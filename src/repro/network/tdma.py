"""Self-stabilising TDMA slot allocation for dynamic wireless ad hoc networks.

Section V-A.2: "We propose a self-stabilizing MAC algorithm that guarantees
satisfying these severe timing requirements" — i.e. starting from *any*
initial slot assignment (including one left over after topology changes), the
network converges to a collision-free TDMA schedule without external time
sources.

The model abstracts the radio at slot granularity: within each TDMA frame,
every node transmits in its chosen slot.  Two nodes collide when they are
within interference range (two hops) and use the same slot.  Receivers that
observe a collision report the collided slot in their own transmission during
the next frame; a transmitter that learns its slot collided re-draws a slot
uniformly at random from the slots it heard as free.  This is the classic
randomised self-stabilising allocation scheme the paper builds on [25].

The E4 experiment measures the number of frames until convergence as a
function of node count, slot count and churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np


@dataclass
class TdmaConfig:
    """TDMA parameters."""

    slots_per_frame: int = 16
    slot_duration: float = 0.005
    #: Probability that a collision report is lost (models imperfect feedback).
    feedback_loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.slots_per_frame < 1:
            raise ValueError("slots_per_frame must be >= 1")
        if self.slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        if not 0.0 <= self.feedback_loss_probability < 1.0:
            raise ValueError("feedback_loss_probability must be in [0, 1)")

    @property
    def frame_duration(self) -> float:
        return self.slots_per_frame * self.slot_duration


class TdmaNode:
    """One node participating in the self-stabilising TDMA algorithm."""

    def __init__(self, node_id: str, config: TdmaConfig, rng: np.random.Generator,
                 slot: Optional[int] = None):
        self.node_id = node_id
        self.config = config
        self.rng = rng
        self.slot = int(slot) if slot is not None else int(rng.integers(0, config.slots_per_frame))
        #: Slots heard busy (by any neighbour) during the last frame.
        self.busy_slots: Set[int] = set()
        #: Collisions observed during the last frame (slots that were garbled).
        self.observed_collisions: Set[int] = set()
        self.slot_changes = 0

    def hears_free_slots(self) -> List[int]:
        """Slots this node believes are free (not heard busy, not its own)."""
        free = [
            s
            for s in range(self.config.slots_per_frame)
            if s not in self.busy_slots and s != self.slot
        ]
        return free if free else list(range(self.config.slots_per_frame))

    def react_to_collision(self) -> None:
        """Re-draw the transmission slot after learning of a collision."""
        candidates = self.hears_free_slots()
        self.slot = int(self.rng.choice(candidates))
        self.slot_changes += 1

    def start_frame(self) -> None:
        self.busy_slots = set()
        self.observed_collisions = set()


class TdmaNetwork:
    """Runs the slot-level TDMA simulation over an explicit topology.

    ``adjacency`` maps node ids to the set of one-hop neighbours.  Collisions
    are evaluated against the *interference* relation: two transmitters
    conflict if they share a neighbour or are neighbours themselves (the
    hidden-terminal constraint).
    """

    def __init__(
        self,
        config: Optional[TdmaConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.config = config or TdmaConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.nodes: Dict[str, TdmaNode] = {}
        self.adjacency: Dict[str, Set[str]] = {}
        self.frames_elapsed = 0
        self.collision_history: List[int] = []
        #: node -> one-or-two-hop interference set, rebuilt after topology
        #: changes so the per-frame conflict checks are set-membership tests
        #: instead of per-pair set intersections.
        self._interference_cache: Optional[Dict[str, Set[str]]] = None

    # ----------------------------------------------------------------- topology
    def add_node(self, node_id: str, neighbors: Optional[Set[str]] = None,
                 slot: Optional[int] = None) -> TdmaNode:
        """Add a node (join); links are made symmetric automatically."""
        node = TdmaNode(node_id, self.config, self.rng, slot=slot)
        self.nodes[node_id] = node
        self.adjacency.setdefault(node_id, set())
        for neighbor in neighbors or set():
            if neighbor in self.nodes:
                self.adjacency[node_id].add(neighbor)
                self.adjacency.setdefault(neighbor, set()).add(node_id)
        self._interference_cache = None
        return node

    def remove_node(self, node_id: str) -> None:
        """Remove a node (leave/crash)."""
        self.nodes.pop(node_id, None)
        self.adjacency.pop(node_id, None)
        for peers in self.adjacency.values():
            peers.discard(node_id)
        self._interference_cache = None

    def add_link(self, a: str, b: str) -> None:
        self.adjacency.setdefault(a, set()).add(b)
        self.adjacency.setdefault(b, set()).add(a)
        self._interference_cache = None

    def remove_link(self, a: str, b: str) -> None:
        self.adjacency.get(a, set()).discard(b)
        self.adjacency.get(b, set()).discard(a)
        self._interference_cache = None

    # --------------------------------------------------------------- execution
    def conflicting_pairs(self) -> List[Tuple[str, str]]:
        """Pairs of nodes whose current slots conflict under interference."""
        conflicts = []
        ids = sorted(self.nodes)
        nodes = self.nodes
        interference = self._interference_sets()
        for i, a in enumerate(ids):
            slot_a = nodes[a].slot
            interferers = interference[a]
            for b in ids[i + 1:]:
                if nodes[b].slot == slot_a and b in interferers:
                    conflicts.append((a, b))
        return conflicts

    def is_converged(self) -> bool:
        """True when the current allocation is collision-free."""
        nodes = self.nodes
        interference = self._interference_sets()
        by_slot: Dict[int, List[str]] = {}
        for node_id, node in nodes.items():
            peers = by_slot.get(node.slot)
            if peers is None:
                by_slot[node.slot] = [node_id]
                continue
            interferers = interference[node_id]
            if any(other in interferers for other in peers):
                return False
            peers.append(node_id)
        return True

    def run_frame(self) -> int:
        """Simulate one TDMA frame; returns the number of collided slots heard.

        Per slot: transmitters whose transmissions are garbled at some common
        neighbour are in collision.  Each listener records busy/collided
        slots; at frame end, transmitters informed of a collision in their
        slot (feedback may be lost) re-draw a slot.
        """
        self.frames_elapsed += 1
        for node in self.nodes.values():
            node.start_frame()

        slot_to_transmitters: Dict[int, List[str]] = {}
        for node_id, node in self.nodes.items():
            slot_to_transmitters.setdefault(node.slot, []).append(node_id)

        colliders: Set[str] = set()
        total_collided_slots = 0
        nodes = self.nodes
        adjacency = self.adjacency
        interference = self._interference_sets()
        for slot, transmitters in slot_to_transmitters.items():
            # O(edges): walk each transmitter's neighbourhood instead of
            # probing every listener against every transmitter.
            heard_counts: Dict[str, int] = {}
            for transmitter in transmitters:
                for listener_id in adjacency.get(transmitter, ()):
                    heard_counts[listener_id] = heard_counts.get(listener_id, 0) + 1
            for listener_id, heard in heard_counts.items():
                listener = nodes.get(listener_id)
                if listener is None:
                    continue
                listener.busy_slots.add(slot)
                if heard >= 2:
                    listener.observed_collisions.add(slot)
            # A transmitter learns of the collision from any neighbour that
            # observed it (collision report piggy-backed on the next frame;
            # modelled here as end-of-frame feedback).
            if len(transmitters) >= 2:
                for a_index, a in enumerate(transmitters):
                    interferers = interference[a]
                    for b in transmitters[a_index + 1:]:
                        if b in interferers:
                            total_collided_slots += 1
                            for transmitter in (a, b):
                                if self._feedback_delivered():
                                    colliders.add(transmitter)
        # Sorted so the re-draw RNG order is independent of string-hash
        # randomisation: physics must not depend on PYTHONHASHSEED.
        for node_id in sorted(colliders):
            self.nodes[node_id].react_to_collision()
        self.collision_history.append(total_collided_slots)
        return total_collided_slots

    def run_until_converged(self, max_frames: int = 1000) -> Optional[int]:
        """Run frames until convergence; returns the frame count or ``None``."""
        for frame in range(max_frames):
            if self.is_converged():
                return frame
            self.run_frame()
        return None if not self.is_converged() else max_frames

    # --------------------------------------------------------------- internals
    def _interference_sets(self) -> Dict[str, Set[str]]:
        """Per-node one-or-two-hop interference sets (cached until the
        topology changes).  ``b in sets[a]`` is equivalent to
        :meth:`_interferes` for the symmetric adjacency this class maintains.
        """
        cache = self._interference_cache
        if cache is None:
            cache = {}
            for node_id in self.nodes:
                neighbors = self.adjacency.get(node_id, set())
                interferers = set(neighbors)
                for neighbor in neighbors:
                    interferers |= self.adjacency.get(neighbor, set())
                interferers.discard(node_id)
                cache[node_id] = interferers
            self._interference_cache = cache
        return cache

    def _interferes(self, a: str, b: str) -> bool:
        """One- or two-hop proximity (shared neighbour) implies interference."""
        neighbors_a = self.adjacency.get(a, set())
        neighbors_b = self.adjacency.get(b, set())
        if b in neighbors_a:
            return True
        return bool(neighbors_a & neighbors_b)

    def _feedback_delivered(self) -> bool:
        p = self.config.feedback_loss_probability
        if p <= 0:
            return True
        return self.rng.random() >= p


def grid_topology(rows: int, cols: int) -> Dict[str, Set[str]]:
    """Convenience: 4-connected grid adjacency used by tests and benches."""
    adjacency: Dict[str, Set[str]] = {}
    def name(r: int, c: int) -> str:
        return f"n{r}_{c}"
    for r in range(rows):
        for c in range(cols):
            peers = set()
            if r > 0:
                peers.add(name(r - 1, c))
            if r < rows - 1:
                peers.add(name(r + 1, c))
            if c > 0:
                peers.add(name(r, c - 1))
            if c < cols - 1:
                peers.add(name(r, c + 1))
            adjacency[name(r, c)] = peers
    return adjacency
