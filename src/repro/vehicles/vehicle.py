"""Road vehicle model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.vehicles.kinematics import LongitudinalState


@dataclass
class Vehicle:
    """A road vehicle moving along a (possibly multi-lane) highway.

    The vehicle is purely kinematic: a controller (ACC/CACC/cruise, selected
    by the use case according to the current LoS) commands an acceleration,
    and :meth:`step` integrates the motion.  Lane changes are modelled as a
    discrete lane switch after a fixed manoeuvre duration, which is all the
    coordinated-lane-change use case needs.
    """

    vehicle_id: str
    state: LongitudinalState = field(default_factory=LongitudinalState)
    lane: int = 0
    length: float = 4.5
    lane_width: float = 3.5
    #: Lane-change bookkeeping: target lane and completion time, or None.
    _lane_change_target: Optional[int] = None
    _lane_change_completes_at: Optional[float] = None
    lane_changes_completed: int = 0

    # ------------------------------------------------------------------ motion
    @property
    def position(self) -> float:
        """Longitudinal position (metres along the road)."""
        return self.state.position

    @property
    def speed(self) -> float:
        return self.state.speed

    @property
    def acceleration(self) -> float:
        return self.state.acceleration

    def xy(self) -> Tuple[float, float]:
        """2-D position used by the wireless medium (lane mapped to y)."""
        return (self.state.position, self.lane * self.lane_width)

    def apply_control(self, acceleration: float) -> float:
        return self.state.apply(acceleration)

    def step(self, dt: float, now: Optional[float] = None) -> None:
        """Integrate one step and complete a pending lane change if due."""
        self.state.step(dt)
        if (
            self._lane_change_target is not None
            and now is not None
            and self._lane_change_completes_at is not None
            and now >= self._lane_change_completes_at
        ):
            self.lane = self._lane_change_target
            self._lane_change_target = None
            self._lane_change_completes_at = None
            self.lane_changes_completed += 1

    # ------------------------------------------------------------- lane change
    @property
    def changing_lane(self) -> bool:
        return self._lane_change_target is not None

    def begin_lane_change(self, target_lane: int, now: float, duration: float = 3.0) -> None:
        """Start a lane change completing ``duration`` seconds from ``now``."""
        if target_lane == self.lane:
            return
        self._lane_change_target = target_lane
        self._lane_change_completes_at = now + duration

    def abort_lane_change(self) -> None:
        self._lane_change_target = None
        self._lane_change_completes_at = None

    # ----------------------------------------------------------------- queries
    def gap_to(self, leader: "Vehicle") -> float:
        """Bumper-to-bumper gap to a leading vehicle (negative means overlap)."""
        return leader.position - leader.length - self.position

    def time_gap_to(self, leader: "Vehicle") -> float:
        """Time gap (headway) to the leader at the current speed."""
        gap = self.gap_to(leader)
        if self.speed <= 0:
            return float("inf")
        return gap / self.speed
