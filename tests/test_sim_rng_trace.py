"""Tests for the named random streams and the trace recorder."""

from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder


class TestRandomStreams:
    def test_same_seed_same_stream_reproducible(self):
        a = RandomStreams(42).stream("medium").random(5)
        b = RandomStreams(42).stream("medium").random(5)
        assert list(a) == list(b)

    def test_different_names_are_independent(self):
        streams = RandomStreams(42)
        a = streams.stream("medium").random(5)
        b = streams.stream("sensor").random(5)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(5)
        b = RandomStreams(2).stream("x").random(5)
        assert list(a) != list(b)

    def test_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("a") is streams.stream("a")

    def test_spawn_children_are_deterministic_and_distinct(self):
        parent = RandomStreams(7)
        child_a = parent.spawn("veh1")
        child_b = parent.spawn("veh2")
        again = RandomStreams(7).spawn("veh1")
        assert child_a.master_seed == again.master_seed
        assert child_a.master_seed != child_b.master_seed


class TestTraceRecorder:
    def test_record_and_query_by_kind(self):
        trace = TraceRecorder()
        trace.record(1.0, "collision", "world", gap=-0.5)
        trace.record(2.0, "los_switch", "kernel", rank=1)
        assert len(trace) == 2
        assert trace.by_kind("collision")[0]["gap"] == -0.5
        assert trace.by_kind("los_switch")[0].get("rank") == 1

    def test_disabled_recorder_drops_records(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "x", "y")
        assert len(trace) == 0

    def test_kind_histogram(self):
        trace = TraceRecorder()
        for _ in range(3):
            trace.record(0.0, "a", "s")
        trace.record(0.0, "b", "s")
        assert trace.kinds() == {"a": 3, "b": 1}

    def test_values_extracts_field(self):
        trace = TraceRecorder()
        for value in (1, 2, 3):
            trace.record(0.0, "sample", "s", v=value)
        trace.record(0.0, "sample", "s")  # record without the field is skipped
        assert trace.values("sample", "v") == [1, 2, 3]

    def test_last_returns_most_recent(self):
        trace = TraceRecorder()
        trace.record(1.0, "tick", "s", n=1)
        trace.record(2.0, "tick", "s", n=2)
        assert trace.last("tick")["n"] == 2
        assert trace.last("missing") is None

    def test_by_source_and_subscribe(self):
        trace = TraceRecorder()
        seen = []
        trace.subscribe(seen.append)
        trace.record(0.0, "k", "alpha")
        trace.record(0.0, "k", "beta")
        assert len(trace.by_source("alpha")) == 1
        assert len(seen) == 2

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(0.0, "k", "s")
        trace.clear()
        assert len(trace) == 0
        assert trace.by_kind("k") == []
        assert trace.by_source("s") == []
        assert trace.kinds() == {}
        assert trace.last("k") is None

    def test_empty_recorder_is_truthy(self):
        # Callers default with `trace or TraceRecorder(...)`; an empty shared
        # recorder must not be silently replaced by that idiom.
        assert bool(TraceRecorder())
        assert bool(TraceRecorder(enabled=False))

    def test_records_property_materialises_views(self):
        trace = TraceRecorder()
        trace.record(1.0, "a", "s1", x=1)
        trace.record(2.0, "b", "s2", x=2)
        records = trace.records
        assert [(r.time, r.kind, r.source, r.fields) for r in records] == [
            (1.0, "a", "s1", {"x": 1}),
            (2.0, "b", "s2", {"x": 2}),
        ]
        assert [r.kind for r in trace] == ["a", "b"]

    def test_query_api_matches_reference_implementation(self):
        trace = TraceRecorder()
        rows = [
            (0.5, "tick", "alpha", {"n": 1}),
            (1.0, "tock", "beta", {"n": 2}),
            (1.5, "tick", "beta", {"n": 3}),
            (2.0, "tick", "alpha", {}),
        ]
        for time, kind, source, fields in rows:
            trace.record(time, kind, source, **fields)
        assert [r.fields for r in trace.by_kind("tick")] == [{"n": 1}, {"n": 3}, {}]
        assert [r.kind for r in trace.by_source("beta")] == ["tock", "tick"]
        assert trace.kinds() == {"tick": 3, "tock": 1}
        assert trace.values("tick", "n") == [1, 3]
        assert trace.last("tick").time == 2.0
        assert len(trace) == 4

    def test_disabled_recorder_stays_empty_and_quiet(self):
        trace = TraceRecorder(enabled=False)
        seen = []
        trace.subscribe(seen.append)
        trace.record(1.0, "k", "s", v=1)
        assert len(trace) == 0 and seen == []
