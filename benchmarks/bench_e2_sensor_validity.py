"""E2 — Abstract sensor validity and validity-aware fusion (Figs 2-3, section IV).

Injects each of the paper's five sensor fault classes into one replica of a
redundant ranging-sensor set and compares the estimation error of
(a) a single faulty sensor, (b) naive averaging and (c) validity-weighted
fusion driven by the MOSAIC-style failure detectors.
"""

import numpy as np

from repro.evaluation.reporting import format_table
from repro.sensors.abstract_sensor import AbstractSensor, PhysicalSensor
from repro.sensors.detectors import RangeDetector, RateLimitDetector, StuckAtDetector
from repro.sensors.faults import FaultClass, make_fault
from repro.sensors.fusion import naive_mean, validity_weighted_mean

from benchmarks.conftest import run_once

TRUE_VALUE = 50.0
SAMPLES = 400
PERIOD = 0.05


def _replica(name: str, seed: int) -> AbstractSensor:
    physical = PhysicalSensor(
        name=name,
        quantity="range",
        truth_fn=lambda t: TRUE_VALUE + 5.0 * np.sin(0.5 * t),
        noise_sigma=0.3,
        rng=np.random.default_rng(seed),
    )
    return AbstractSensor(
        physical,
        detectors=[
            RangeDetector(low=0.0, high=200.0),
            RateLimitDetector(max_rate=30.0),
            StuckAtDetector(window=10, min_run=4),
        ],
    )


def _evaluate_fault(fault_class: FaultClass) -> dict:
    replicas = [_replica(f"s{i}", seed=i) for i in range(3)]
    replicas[0].physical.inject(make_fault(fault_class, magnitude=3.0), start=5.0)
    errors = {"faulty_sensor": [], "naive_mean": [], "validity_weighted": []}
    detected = 0
    fault_samples = 0
    for step in range(SAMPLES):
        now = step * PERIOD
        truth = TRUE_VALUE + 5.0 * np.sin(0.5 * now)
        readings = [r for r in (replica.read(now) for replica in replicas) if r is not None]
        if not readings:
            continue
        faulty = next((r for r in readings if r.attributes.source_id == "s0"), None)
        if now >= 5.0:
            fault_samples += 1
            if faulty is not None and faulty.validity < 0.99:
                detected += 1
        if faulty is not None:
            errors["faulty_sensor"].append(abs(faulty.value - truth))
        naive = naive_mean(readings)
        weighted = validity_weighted_mean(readings, min_validity=0.05)
        if naive is not None:
            errors["naive_mean"].append(abs(naive.value - truth))
        if weighted is not None:
            errors["validity_weighted"].append(abs(weighted.value - truth))
    return {
        "fault_class": fault_class.value,
        "detection_coverage": detected / fault_samples if fault_samples else 0.0,
        "faulty_sensor_mae": float(np.mean(errors["faulty_sensor"])),
        "naive_mean_mae": float(np.mean(errors["naive_mean"])),
        "validity_weighted_mae": float(np.mean(errors["validity_weighted"])),
    }


def test_benchmark_e2_sensor_validity(benchmark):
    rows = run_once(benchmark, lambda: [_evaluate_fault(fc) for fc in FaultClass])
    print()
    print(format_table(rows, title="E2: per-fault-class detection coverage and fusion error (MAE, m)"))
    offset_rows = [r for r in rows if "offset" in r["fault_class"] or r["fault_class"] == "stuck_at"]
    # Validity-weighted fusion must beat naive averaging for value faults.
    assert all(r["validity_weighted_mae"] <= r["naive_mean_mae"] + 1e-9 for r in offset_rows)
    assert all(r["validity_weighted_mae"] < r["faulty_sensor_mae"] for r in offset_rows)
