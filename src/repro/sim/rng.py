"""Named, seeded random streams.

Every stochastic component (wireless medium, sensor noise, fault injector,
traffic generator) draws from its own named stream so that changing one
component's random consumption does not perturb the others — a prerequisite
for the paired comparisons in the E1–E9 experiments.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RandomStreams:
    """Factory of independent, reproducible ``numpy`` generators."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child :class:`RandomStreams` (e.g. one per vehicle)."""
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[8:16], "little"))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RandomStreams(master_seed={self.master_seed}, streams={sorted(self._streams)})"
