"""E4 — Self-stabilising TDMA convergence and GPS-free pulse alignment (section V-A.2).

Series 1: TDMA frames to convergence vs network size (grid topologies), with
and without churn.  Series 2: pulse-synchronisation rounds to align frame
starts below a threshold, with and without the correction algorithm.

Both series run as campaigns over the registered ``tdma_convergence`` and
``pulse_alignment`` scenarios; the sweep is an explicit point list because
the grid geometry and slot count co-vary.
"""

from repro.evaluation.reporting import format_table

from benchmarks.conftest import run_once, seeds_or

GRID_SIZES = ((2, 2), (3, 3), (4, 4), (5, 5))
DEFAULT_SEEDS = (1, 2, 3)


def test_benchmark_e4_tdma_convergence(benchmark, campaign_runner, campaign_seed_count):
    seeds = seeds_or(DEFAULT_SEEDS, campaign_seed_count)
    tdma_points = [
        {"rows": rows, "cols": cols, "slots": max(12, rows * cols), "churn": churn}
        for rows, cols in GRID_SIZES
        for churn in (False, True)
    ]
    pulse_points = [
        {"nodes": nodes, "correction_gain": gain}
        for nodes in (4, 8, 12)
        for gain in (0.5, 0.0)
    ]

    def experiment():
        tdma = campaign_runner.run("tdma_convergence", sweep=tdma_points, seeds=seeds)
        pulse = campaign_runner.run("pulse_alignment", sweep=pulse_points, seeds=seeds)
        return tdma, pulse

    tdma, pulse = run_once(benchmark, experiment)
    assert tdma.failures == 0 and pulse.failures == 0

    grouped = tdma.grouped_rows(by=("rows", "cols", "churn"))
    tdma_rows = []
    for rows, cols in GRID_SIZES:
        base = next(r for r in grouped if r["rows"] == rows and r["cols"] == cols and not r["churn"])
        churned = next(r for r in grouped if r["rows"] == rows and r["cols"] == cols and r["churn"])
        tdma_rows.append(
            {
                "nodes": rows * cols,
                "slots": max(12, rows * cols),
                "frames_to_converge_mean": base.get("frames_to_converge"),
                "frames_with_churn_mean": churned.get("frames_to_converge"),
                "converged_all": base["converged"] == 1 and churned["converged"] == 1,
            }
        )

    pulse_grouped = pulse.grouped_rows(by=("nodes", "correction_gain"))
    pulse_rows = []
    for nodes in (4, 8, 12):
        with_sync = next(r for r in pulse_grouped if r["nodes"] == nodes and r["correction_gain"] == 0.5)
        without_sync = next(r for r in pulse_grouped if r["nodes"] == nodes and r["correction_gain"] == 0.0)
        pulse_rows.append(
            {
                "nodes": nodes,
                "rounds_to_align_mean": with_sync.get("rounds_to_align"),
                "aligned_all": with_sync["aligned"] == 1,
                "aligned_without_sync": without_sync["aligned"] == 1,
            }
        )

    print()
    print(format_table(tdma_rows, title="E4a: self-stabilising TDMA convergence (frames)"))
    print()
    print(format_table(pulse_rows, title="E4b: GPS-free pulse alignment (rounds to <2 ms misalignment)"))
    assert all(row["converged_all"] for row in tdma_rows)
    assert all(row["aligned_all"] for row in pulse_rows)
    # Without the correction algorithm, random initial phases stay misaligned.
    assert not all(row["aligned_without_sync"] for row in pulse_rows)
