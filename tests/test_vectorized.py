"""Lockstep vectorized backend (``repro.vectorized`` / ``--backend vector``).

The contract under test: a vector campaign's store is **byte-identical**
to the inline kernel's for every seed, whatever mix of fast path, probe,
eviction and fallback produced it.  Everything else (occupancy stats,
provenance surfaces, CLI guards) hangs off that.
"""

import json

import pytest

from repro.experiments import ParallelCampaignRunner, ResultStore
from repro.experiments.cli import main as cli_main
from repro.experiments.registry import load_builtin_scenarios
from repro.observability.progress import read_progress
from repro.observability.telemetry import telemetry_enabled
from repro.resilience import FaultPlan, FaultRule, armed
from repro.scenario.harness import ScenarioHarness
from repro.vectorized import (
    PROGRAMS,
    LockstepBatch,
    VectorBatchBackend,
    VectorStats,
    factory_source_hash,
    program_for,
)

REGISTRY = load_builtin_scenarios()


def run_store(tmp_path, name, scenario, seeds, params=None, backend=None):
    """Run one campaign into ``tmp_path/name`` and return the store path."""
    path = tmp_path / name
    ParallelCampaignRunner(
        jobs=1, registry=REGISTRY, store=ResultStore(path), backend=backend
    ).run(scenario, params=params, seeds=list(seeds))
    return path


def run_pair(tmp_path, scenario, seeds, params=None, backend=None):
    """Inline and vector stores for the same campaign, plus the backend used."""
    inline = run_store(tmp_path, "inline.jsonl", scenario, seeds, params)
    backend = backend or VectorBatchBackend()
    vector = run_store(tmp_path, "vector.jsonl", scenario, seeds, params, backend=backend)
    return inline.read_bytes(), vector.read_bytes(), backend


class TestByteIdentity:
    @pytest.mark.parametrize(
        "scenario, params, n_seeds",
        [
            ("sensor_validity", {"fault_class": "stuck_at"}, 16),
            ("sensor_validity", {"fault_class": "permanent_offset", "samples": 250}, 8),
            ("sensor_validity", {"fault_class": "delay", "samples": 150}, 8),
            ("tdma_convergence", None, 12),
            ("tdma_convergence", {"rows": 5, "cols": 5, "slots": 30}, 8),
            ("demo/random_walk", None, 16),
        ],
        ids=["e2-stuck", "e2-offset", "e2-delay", "e4-default", "e4-5x5", "walk"],
    )
    def test_vector_store_matches_inline(self, tmp_path, scenario, params, n_seeds):
        inline, vector, backend = run_pair(tmp_path, scenario, range(n_seeds), params)
        assert vector == inline
        assert backend.stats.batches == 1
        # One scalar probe per batch; everything else rides the fast path.
        assert backend.stats.probe_cells == 1
        assert backend.stats.fast_cells == n_seeds - 1
        assert backend.stats.probe_mismatches == 0
        assert 0.0 < backend.stats.occupancy < 1.0

    def test_sweep_plans_one_batch_per_param_point(self, tmp_path):
        inline_path = tmp_path / "inline.jsonl"
        vector_path = tmp_path / "vector.jsonl"
        sweep = [{"fault_class": "stuck_at"}, {"fault_class": "permanent_offset"}]
        seeds = list(range(6))
        ParallelCampaignRunner(jobs=1, registry=REGISTRY, store=ResultStore(inline_path)).run(
            "sensor_validity", sweep=sweep, seeds=seeds
        )
        backend = VectorBatchBackend()
        ParallelCampaignRunner(registry=REGISTRY, store=ResultStore(vector_path), backend=backend).run(
            "sensor_validity", sweep=sweep, seeds=seeds
        )
        assert vector_path.read_bytes() == inline_path.read_bytes()
        assert backend.stats.groups == 2
        assert backend.stats.batches == 2


class TestFallbacks:
    def test_rng_drawing_fault_class_falls_back_whole(self, tmp_path):
        inline, vector, backend = run_pair(
            tmp_path, "sensor_validity", range(6), {"fault_class": "sporadic_offset"}
        )
        assert vector == inline
        assert backend.stats.batches == 0
        assert backend.stats.ineligible_groups == 1
        assert backend.stats.fallback_cells == 6
        assert backend.stats.occupancy == 0.0

    def test_tdma_churn_falls_back_whole(self, tmp_path):
        inline, vector, backend = run_pair(
            tmp_path, "tdma_convergence", range(4), {"churn": True}
        )
        assert vector == inline
        assert backend.stats.batches == 0
        assert backend.stats.ineligible_groups == 1

    def test_unprogrammed_scenario_falls_back_whole(self, tmp_path):
        inline, vector, backend = run_pair(tmp_path, "event_channels", range(3))
        assert vector == inline
        assert backend.stats.batches == 0
        assert backend.stats.fallback_cells == 3

    def test_single_seed_group_is_not_batched(self, tmp_path):
        inline, vector, backend = run_pair(
            tmp_path, "demo/random_walk", [7]
        )
        assert vector == inline
        assert backend.stats.batches == 0
        assert backend.stats.fallback_cells == 1

    def test_program_error_falls_back_whole(self, tmp_path, monkeypatch):
        real = program_for

        class ExplodingProgram:
            def run(self, spec, batch):
                raise RuntimeError("boom")

        monkeypatch.setattr(
            "repro.vectorized.backend.program_for",
            lambda spec, params: ExplodingProgram() if real(spec, params) else None,
        )
        inline, vector, backend = run_pair(tmp_path, "demo/random_walk", range(6))
        assert vector == inline
        assert backend.stats.program_errors == 1
        assert backend.stats.batches == 0
        assert backend.stats.fallback_cells == 6


class TestEviction:
    @pytest.mark.parametrize("kind", ["stall", "io_error"])
    def test_fault_plan_evicts_seed_to_scalar(self, tmp_path, kind):
        inline = run_store(tmp_path, "inline.jsonl", "demo/random_walk", range(8))
        backend = VectorBatchBackend()
        plan = FaultPlan(
            [FaultRule(point="vector.evict", kind=kind, match={"seed": 5})]
        )
        with armed(plan):
            vector = run_store(
                tmp_path, "vector.jsonl", "demo/random_walk", range(8), backend=backend
            )
        assert vector.read_bytes() == inline.read_bytes()
        assert backend.stats.evicted_cells == 1
        assert backend.stats.eviction_reasons == {"fault-plan": 1}
        assert backend.stats.fast_cells == 6  # 8 - probe - evicted

    def test_mid_batch_eviction_finishes_scalar(self, tmp_path, monkeypatch):
        real = program_for

        class EvictingProgram:
            def __init__(self, inner):
                self.inner = inner

            def run(self, spec, batch):
                batch.evict(3, reason="test-divergence")
                return self.inner.run(spec, batch)

        monkeypatch.setattr(
            "repro.vectorized.backend.program_for",
            lambda spec, params: (
                EvictingProgram(real(spec, params)) if real(spec, params) else None
            ),
        )
        inline, vector, backend = run_pair(tmp_path, "demo/random_walk", range(8))
        assert vector == inline
        assert backend.stats.evicted_cells == 1
        assert backend.stats.eviction_reasons == {"test-divergence": 1}
        assert backend.stats.batches == 1

    def test_probe_mismatch_reruns_group_scalar(self, tmp_path, monkeypatch):
        real = program_for

        class LyingProgram:
            def __init__(self, inner):
                self.inner = inner

            def run(self, spec, batch):
                outputs = self.inner.run(spec, batch)
                probe_seed = batch.active_seeds()[0]
                outputs[probe_seed] = dict(outputs[probe_seed])
                outputs[probe_seed]["final_position"] = 1e9
                return outputs

        monkeypatch.setattr(
            "repro.vectorized.backend.program_for",
            lambda spec, params: (
                LyingProgram(real(spec, params)) if real(spec, params) else None
            ),
        )
        inline, vector, backend = run_pair(tmp_path, "demo/random_walk", range(6))
        assert vector == inline
        assert backend.stats.probe_mismatches == 1
        assert backend.stats.batches == 0
        assert backend.stats.fast_cells == 0


class TestEligibilityGates:
    def test_program_hashes_pin_current_factory_sources(self):
        """Every registered program's hash must match its live factory source.

        If this fails, a scalar factory was edited without re-verifying the
        lockstep program: update the program's math *and* its pinned hash.
        """
        for name, program in PROGRAMS.items():
            spec = REGISTRY.get(name)
            assert spec is not None, f"program registered for unknown scenario {name!r}"
            assert factory_source_hash(spec) == program.source_sha256, name

    def test_source_hash_mismatch_disables_program(self, monkeypatch):
        spec = REGISTRY.get("demo/random_walk")
        params = spec.coerce_params({})
        assert program_for(spec, params) is not None
        monkeypatch.setattr(PROGRAMS["demo/random_walk"], "source_sha256", "0" * 64)
        assert program_for(spec, params) is None

    def test_sensor_rig_lockstep_safe(self):
        from repro.scenario import SensorRig
        from repro.sensors.detectors import RangeDetector, StuckAtDetector

        safe = SensorRig(
            name="r",
            quantity="range",
            noise_sigma=0.1,
            detectors=lambda: [RangeDetector(low=0.0, high=1.0)],
        )
        assert safe.lockstep_safe()

        class CustomDetector(StuckAtDetector):
            pass

        unsafe = SensorRig(
            name="r",
            quantity="range",
            noise_sigma=0.1,
            detectors=lambda: [CustomDetector(window=10, min_run=4)],
        )
        assert not unsafe.lockstep_safe()
        broken = SensorRig(
            name="r",
            quantity="range",
            noise_sigma=0.1,
            detectors=lambda: (_ for _ in ()).throw(RuntimeError("no stack")),
        )
        assert not broken.lockstep_safe()

    def test_harness_lockstep_eligibility(self):
        harness = ScenarioHarness(seed=0)
        assert harness.lockstep_eligible
        from repro.scenario import RadioPreset

        with_radio = ScenarioHarness(seed=0, radio=RadioPreset())
        assert not with_radio.lockstep_eligible


class TestEngineUnits:
    def test_lockstep_batch_eviction_bookkeeping(self):
        batch = LockstepBatch("s", {}, [3, 1, 2])
        assert len(batch) == 3
        assert batch.active_seeds() == [3, 1, 2]
        batch.evict(1, reason="why")
        assert batch.active_seeds() == [3, 2]
        assert batch.evicted == {1: "why"}
        with pytest.raises(KeyError):
            batch.evict(99)

    def test_vector_stats_occupancy_and_summary(self):
        stats = VectorStats()
        assert stats.occupancy == 0.0
        stats.batches = 1
        stats.fast_cells = 7
        stats.probe_cells = 1
        stats.record_eviction("fault-plan")
        stats.record_eviction("fault-plan")
        assert stats.evicted_cells == 2
        assert stats.total_cells == 10
        assert stats.occupancy == pytest.approx(0.7)
        summary = stats.summary()
        assert "7/10" in summary and "70%" in summary
        doc = stats.to_json_dict()
        assert doc["occupancy"] == 0.7
        assert doc["eviction_reasons"] == {"fault-plan": 2}


class TestCliAndProvenance:
    def test_vector_rejects_parallel_and_batch_flags(self, capsys):
        args = ["run", "demo/random_walk", "--seeds", "4", "--backend", "vector"]
        assert cli_main(args + ["--jobs", "2"]) == 2
        assert "--jobs/--batch-size" in capsys.readouterr().err
        assert cli_main(args + ["--batch-size", "2"]) == 2
        assert "--jobs/--batch-size" in capsys.readouterr().err

    def test_vector_run_report_status_surfaces(self, tmp_path, capsys):
        store = tmp_path / "vector.jsonl"
        rc = cli_main(
            [
                "run",
                "demo/random_walk",
                "--seeds",
                "8",
                "--backend",
                "vector",
                "--store",
                str(store),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend=vector" in out
        assert "cells by path: scalar=1, vector=7" in out
        assert "occupancy" in out

        inline = tmp_path / "inline.jsonl"
        assert (
            cli_main(
                ["run", "demo/random_walk", "--seeds", "8", "--store", str(inline)]
            )
            == 0
        )
        capsys.readouterr()
        assert store.read_bytes() == inline.read_bytes()

        progress = read_progress(tmp_path / "vector.jsonl.progress.json")
        assert progress.backend == "vector"
        assert progress.backend_cells == {"scalar": 1, "vector": 7}

        assert cli_main(["report", str(store)]) == 0
        out = capsys.readouterr().out
        assert "backend=vector" in out
        assert "scalar=1, vector=7" in out

        assert cli_main(["status", str(store)]) == 0
        out = capsys.readouterr().out
        assert "[vector]" in out
        assert "cells: scalar=1, vector=7" in out

    def test_vector_profile_reports_batch_stats(self, tmp_path, capsys):
        store = tmp_path / "vector.jsonl"
        rc = cli_main(
            [
                "run",
                "demo/random_walk",
                "--seeds",
                "6",
                "--backend",
                "vector",
                "--profile",
                "--store",
                str(store),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        sidecar = tmp_path / "vector.jsonl.profile.json"
        profile = json.loads(sidecar.read_text(encoding="utf-8"))
        assert profile["vector"]["batches"] == 1
        assert profile["vector"]["fast_cells"] == 5

    def test_vector_telemetry_counters(self):
        with telemetry_enabled() as registry:
            registry.reset()
            backend = VectorBatchBackend()
            ParallelCampaignRunner(registry=REGISTRY, backend=backend).run(
                "demo/random_walk", seeds=list(range(8))
            )
            counters = registry.counters()
            gauges = registry.gauges()
        assert counters.get("vector.batch") == 1
        assert "vector.evict" not in counters
        assert 0.0 < gauges["vector.occupancy"] < 1.0
