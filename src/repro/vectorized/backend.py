"""``VectorBatchBackend`` — lockstep multi-seed execution on the backend seam.

The batch planner groups a campaign's pending cells by their fully-coerced
parameter point (the scenario is fixed per campaign, and the program pins
the scenario *source*, so a group is homogeneous by construction), asks the
program registry whether the group qualifies for the fast path, and runs
qualifying groups as one :class:`~repro.vectorized.engine.LockstepBatch`.

Correctness never depends on the fast path:

* ineligible groups (no program, unsupported params, edited factory source,
  groups too small to batch) fall back whole to the scalar kernel;
* seeds evicted pre-flight (``vector.evict`` fault point) or mid-flight
  (:meth:`LockstepBatch.evict`) finish on the scalar kernel;
* every verified batch pays for one scalar **probe**: its first surviving
  cell is executed on the scalar kernel and the probe's serialized record
  bytes must equal the vector record's bytes — on mismatch the whole group
  re-runs scalar (and the mismatch is counted and logged).

Because fast-path records are built with the same ``extract_metrics`` and
serialiser as scalar records, a `--backend vector` store is byte-identical
to an inline store, and the backend composes with resume, the shared cache,
retries and progress tracking unchanged.
"""

from __future__ import annotations

import json
import logging
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.runner import (
    ExecutionBackend,
    RunRecord,
    execute_run_with_retry,
)
from repro.experiments.spec import jsonable
from repro.observability.events import EventLog
from repro.observability.progress import ProgressTracker
from repro.observability.telemetry import TELEMETRY
from repro.observability.trace import TRACER
from repro.resilience.faults import InjectedFaultError, inject
from repro.resilience.retry import CircuitBreaker, RetryPolicy
from repro.vectorized.engine import LockstepBatch, VectorStats
from repro.vectorized.programs import program_for

logger = logging.getLogger(__name__)

__all__ = ["VectorBatchBackend"]


class VectorBatchBackend(ExecutionBackend):
    """Executes homogeneous seed batches in lockstep, scalar otherwise."""

    name = "vector"

    def __init__(
        self,
        profile: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.profile = profile
        self.retry_policy = retry_policy
        #: Per-campaign occupancy accounting; reset on every execute().
        self.stats = VectorStats()

    # ----------------------------------------------------------------- backend
    def execute(
        self,
        spec: Any,
        pending: Sequence[Any],
        records: List[Optional[RunRecord]],
        payload: Optional[Any] = None,
        progress: Optional[ProgressTracker] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        self.stats = VectorStats()
        breaker = CircuitBreaker()
        scalar_indices: set = set()
        for cells in self._plan(pending):
            self.stats.groups += 1
            program = program_for(spec, cells[0].params)
            if program is None:
                self.stats.ineligible_groups += 1
                self.stats.fallback_cells += len(cells)
                scalar_indices.update(cell.index for cell in cells)
                continue
            scalar_indices.update(
                self._run_group(spec, program, cells, records, progress, breaker, events)
            )
        # Scalar queue: original pending order, so retry/fault-plan counters
        # fire in a deterministic sequence.
        for run_spec in pending:
            if run_spec.index not in scalar_indices:
                continue
            record = execute_run_with_retry(
                spec,
                run_spec,
                policy=self.retry_policy,
                breaker=breaker,
                keep_result=True,
                profile=self.profile,
            )
            record.executed_by = "scalar"
            records[run_spec.index] = record
            if progress is not None:
                progress.record_record(ok=record.ok)
        if self.stats.total_cells:
            TELEMETRY.gauge("vector.occupancy", self.stats.occupancy)

    # ------------------------------------------------------------------- steps
    def _plan(self, pending: Sequence[Any]) -> List[List[Any]]:
        """Group pending cells by canonical parameter point, in first-seen order."""
        groups: Dict[str, List[Any]] = {}
        order: List[str] = []
        for run_spec in pending:
            key = json.dumps(jsonable(run_spec.params), sort_keys=True)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [run_spec]
                order.append(key)
            else:
                bucket.append(run_spec)
        return [groups[key] for key in order]

    def _run_group(
        self,
        spec: Any,
        program: Any,
        cells: List[Any],
        records: List[Optional[RunRecord]],
        progress: Optional[ProgressTracker],
        breaker: CircuitBreaker,
        events: Optional[EventLog] = None,
    ) -> List[int]:
        """Run one eligible group; returns indices that must finish scalar.

        Observability: the whole group runs inside one ``batch`` trace span
        (the scalar probe's cell span nests under it), per-seed evictions
        and the probe are instant child events, and the shared event log —
        when attached — gets one ``vector_batch`` line per settled batch
        plus a ``vector_evict`` line per evicted seed.
        """

        def evict_event(seed: int, reason: str) -> None:
            TRACER.instant("evict", seed=seed, reason=reason)
            if events is not None:
                events.emit(
                    "vector_evict", scenario=spec.name, seed=seed, reason=reason
                )

        # Pre-flight evictions: the `vector.evict` fault point lets chaos
        # plans force structural divergence for chosen seeds.  Any planned
        # fault there — directive or raised — evicts the cell.
        batch_cells: List[Any] = []
        evicted_indices: List[int] = []
        with TRACER.span(
            "batch", cat="batch", scenario=spec.name, size=len(cells)
        ) as batch_span:
            for run_spec in cells:
                try:
                    rule = inject("vector.evict", scenario=spec.name, seed=run_spec.seed)
                except InjectedFaultError:
                    rule = True
                if rule is not None:
                    self.stats.record_eviction("fault-plan")
                    TELEMETRY.count("vector.evict")
                    evict_event(run_spec.seed, "preflight")
                    evicted_indices.append(run_spec.index)
                else:
                    batch_cells.append(run_spec)
            if len(batch_cells) < 2:
                # A lockstep batch needs at least one fast cell beyond the
                # scalar probe to be worth planning; run undersized groups
                # scalar.
                self.stats.fallback_cells += len(batch_cells)
                batch_span.set(outcome="undersized")
                return evicted_indices + [cell.index for cell in batch_cells]

            started = time.perf_counter()
            batch = LockstepBatch(
                spec.name, dict(cells[0].params), [c.seed for c in batch_cells]
            )
            try:
                outputs = program.run(spec, batch)
            except Exception as exc:  # noqa: BLE001 — fast path must never kill a campaign
                logger.warning(
                    "vector program for %r failed (%s: %s); group of %d falls back "
                    "to the scalar kernel",
                    spec.name,
                    type(exc).__name__,
                    exc,
                    len(batch_cells),
                )
                self.stats.program_errors += 1
                self.stats.fallback_cells += len(batch_cells)
                batch_span.set(outcome="program-error")
                return evicted_indices + [cell.index for cell in batch_cells]
            elapsed = time.perf_counter() - started

            # Mid-flight evictions recorded on the batch by the program.
            evicted_seeds = batch.evicted
            survivors: List[Any] = []
            for run_spec in batch_cells:
                if run_spec.seed in evicted_seeds:
                    self.stats.record_eviction(evicted_seeds[run_spec.seed] or "mid-batch")
                    TELEMETRY.count("vector.evict")
                    evict_event(run_spec.seed, "midflight")
                    evicted_indices.append(run_spec.index)
                else:
                    survivors.append(run_spec)
            if not survivors:
                batch_span.set(outcome="all-evicted")
                return evicted_indices

            # Scalar probe: the batch's first surviving cell runs on the
            # scalar kernel and must serialise to the exact bytes the vector
            # path built.
            probe_spec = survivors[0]
            TRACER.instant("probe", seed=probe_spec.seed)
            probe_record = execute_run_with_retry(
                spec,
                probe_spec,
                policy=self.retry_policy,
                breaker=breaker,
                keep_result=True,
                profile=self.profile,
            )
            vector_probe = self._vector_record(
                spec, probe_spec, outputs.get(probe_spec.seed)
            )
            verified = vector_probe is not None and self._identical(
                probe_record, vector_probe
            )
            if events is not None:
                events.emit(
                    "vector_batch",
                    scenario=spec.name,
                    size=len(survivors),
                    verified=verified,
                    elapsed_s=round(elapsed, 6),
                )
            if not verified:
                self.stats.probe_mismatches += 1
                self.stats.probe_cells += 1
                self.stats.fallback_cells += len(survivors) - 1
                logger.warning(
                    "vector probe mismatch for %r seed %s; group of %d falls back "
                    "to the scalar kernel",
                    spec.name,
                    probe_spec.seed,
                    len(survivors),
                )
                probe_record.executed_by = "scalar"
                records[probe_spec.index] = probe_record
                if progress is not None:
                    progress.record_record(ok=probe_record.ok)
                batch_span.set(outcome="probe-mismatch")
                return evicted_indices + [cell.index for cell in survivors[1:]]

            # Verified: the batch's records are trusted as-is.
            self.stats.batches += 1
            TELEMETRY.count("vector.batch")
            probe_record.executed_by = "scalar"
            records[probe_spec.index] = probe_record
            self.stats.probe_cells += 1
            if progress is not None:
                progress.record_record(ok=probe_record.ok)
            # Amortise the batch's wall time over its fast cells; transient
            # provenance only (the run ledger reads it), never serialised.
            per_cell = elapsed / max(1, len(survivors) - 1)
            leftover: List[int] = []
            for run_spec in survivors[1:]:
                record = self._vector_record(spec, run_spec, outputs.get(run_spec.seed))
                if record is None:
                    # The program silently dropped a seed it did not evict;
                    # treat it like an eviction rather than trusting a hole.
                    self.stats.record_eviction("missing-output")
                    TELEMETRY.count("vector.evict")
                    evict_event(run_spec.seed, "missing-output")
                    leftover.append(run_spec.index)
                    continue
                record.executed_by = "vector"
                record.duration = per_cell
                records[run_spec.index] = record
                self.stats.fast_cells += 1
                if progress is not None:
                    progress.record_record(ok=True)
            batch_span.set(outcome="verified", fast_cells=self.stats.fast_cells)
            return evicted_indices + leftover

    def _vector_record(
        self, spec: Any, run_spec: Any, output: Optional[Dict[str, Any]]
    ) -> Optional[RunRecord]:
        if output is None:
            return None
        try:
            metrics = spec.extract_metrics(output)
        except Exception:  # noqa: BLE001 — malformed program output → scalar fallback
            return None
        return RunRecord(
            scenario=spec.name,
            params=dict(run_spec.params),
            seed=run_spec.seed,
            status="ok",
            metrics=metrics,
        )

    @staticmethod
    def _identical(a: RunRecord, b: RunRecord) -> bool:
        """Byte-level equality of the records' serialised forms.

        Compares the JSON text (not the dicts) so sign/precision artefacts
        like ``-0.0`` vs ``0.0`` — equal as floats, different as bytes —
        fail the probe.
        """
        return json.dumps(a.to_json_dict(), sort_keys=True) == json.dumps(
            b.to_json_dict(), sort_keys=True
        )
