"""Builder components scenarios compose instead of hand-wiring.

Each builder is a small declarative description of one slice of the
simulation stack; :class:`~repro.scenario.harness.ScenarioHarness` turns them
into live objects in a deterministic, reproducible order:

* :class:`RadioPreset` — the shared wireless medium plus the MAC flavour
  (R2T-MAC or plain CSMA) every node's transport is built from;
* :class:`WorldSpec` — the physical environment (multi-lane highway or
  shared airspace) stepping the vehicles;
* :class:`NodeSpec` — one communicating node: transport, event broker,
  channel announcements and subscriptions;
* :class:`SensorRig` — a noisy physical sensor wrapped into an abstract
  sensor with its fault-detector stack;
* :class:`MetricProbe` — a named periodic sampler accumulating metric
  samples and counters for the scenario's results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.middleware.qos import QoSSpec
from repro.network.mac_csma import CsmaConfig, CsmaMacNode
from repro.network.medium import MediumConfig, WirelessMedium
from repro.network.r2t_mac import R2TConfig, R2TMacNode
from repro.sensors.abstract_sensor import AbstractSensor, PhysicalSensor
from repro.sensors.detectors import RangeDetector, RateLimitDetector, StuckAtDetector
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder
from repro.vehicles.aircraft import AirspaceWorld
from repro.vehicles.world import HighwayWorld

PositionFn = Callable[[], Tuple[float, ...]]

#: Detector types whose per-sample math the lockstep vector engine
#: (:mod:`repro.vectorized`) reproduces bit-exactly.  A rig whose stack
#: strays outside this set disqualifies its scenario group from the fast
#: path — see :meth:`SensorRig.lockstep_safe`.
LOCKSTEP_SAFE_DETECTORS: Tuple[type, ...] = (RangeDetector, RateLimitDetector, StuckAtDetector)


@dataclass(frozen=True)
class RadioPreset:
    """The radio stack: one shared medium plus a per-node MAC flavour.

    ``mac`` selects the default transport built for every node (``"r2t"``
    for the paper's R2T-MAC with channel hopping, ``"csma"`` for the plain
    CSMA/CA baseline); individual :class:`NodeSpec` entries may override it.
    """

    mac: str = "r2t"
    medium: MediumConfig = field(default_factory=MediumConfig)
    r2t_config: Optional[R2TConfig] = None
    csma_config: Optional[CsmaConfig] = None
    channel: int = 0

    def __post_init__(self) -> None:
        if self.mac not in ("r2t", "csma"):
            raise ValueError(f"unknown MAC preset {self.mac!r} (expected 'r2t' or 'csma')")

    def build_medium(self, simulator: Simulator, rng: np.random.Generator) -> WirelessMedium:
        return WirelessMedium(simulator, self.medium, rng=rng)

    def build_mac(
        self,
        node_id: str,
        simulator: Simulator,
        medium: WirelessMedium,
        rng: np.random.Generator,
        position_fn: Optional[PositionFn] = None,
        mac: Optional[str] = None,
    ):
        kind = mac or self.mac
        if kind == "r2t":
            return R2TMacNode(
                node_id,
                simulator,
                medium,
                config=self.r2t_config or R2TConfig(),
                csma_config=self.csma_config,
                rng=rng,
                position_fn=position_fn,
                channel=self.channel,
            )
        if kind == "csma":
            return CsmaMacNode(
                node_id,
                simulator,
                medium,
                config=self.csma_config,
                rng=rng,
                position_fn=position_fn,
                channel=self.channel,
            )
        raise ValueError(f"unknown MAC kind {kind!r} (expected 'r2t' or 'csma')")


@dataclass(frozen=True)
class WorldSpec:
    """The physical environment hosting the scenario's vehicles."""

    kind: str = "highway"  # "highway" | "airspace"
    lanes: int = 1
    step_period: float = 0.05

    def build(self, simulator: Simulator, trace: TraceRecorder):
        if self.kind == "highway":
            return HighwayWorld(
                simulator, lanes=self.lanes, step_period=self.step_period, trace=trace
            )
        if self.kind == "airspace":
            return AirspaceWorld(simulator, step_period=self.step_period, trace=trace)
        raise ValueError(f"unknown world kind {self.kind!r} (expected 'highway' or 'airspace')")


#: One announcement: a bare subject (best-effort) or ``(subject, QoSSpec)``.
Announcement = Union[str, Tuple[str, Optional[QoSSpec]]]


@dataclass(frozen=True)
class NodeSpec:
    """One communicating node of the scenario.

    The harness builds, in order: the MAC transport (seeded from the node's
    own named RNG stream), the event broker, every ``announce`` channel and
    every ``subscribe`` callback — exactly the wiring each use case used to
    repeat by hand.
    """

    node_id: str
    position_fn: Optional[PositionFn] = None
    #: Override the preset's MAC flavour for this node ("r2t" | "csma").
    mac: Optional[str] = None
    #: Explicit generator (e.g. legacy ``default_rng(seed + k)`` wiring);
    #: defaults to the harness stream named by ``rng_stream``.
    rng: Optional[np.random.Generator] = None
    #: Stream name within the harness streams; defaults to ``mac:<node_id>``.
    rng_stream: Optional[str] = None
    announce: Tuple[Announcement, ...] = ()
    subscribe: Tuple[Tuple[str, Callable[[Any], None]], ...] = ()
    #: Build an event broker on top of the transport (disable for raw MAC use).
    broker: bool = True
    #: Extra :class:`~repro.middleware.broker.EventBroker` keyword arguments
    #: (e.g. ``assessor``, ``admission_control``).
    broker_kwargs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SensorRig:
    """A noisy physical sensor wrapped into an abstract sensor with detectors.

    ``detectors`` is a zero-argument factory because detector instances are
    stateful; every :meth:`build` call gets a fresh stack.
    """

    name: str
    quantity: str
    noise_sigma: float
    detectors: Callable[[], List[Any]] = tuple
    #: Stream name drawn from the ``RandomStreams`` passed to :meth:`build`.
    stream: str = "sensor"

    def build(
        self,
        truth_fn: Callable[[float], float],
        streams: Optional[RandomStreams] = None,
        rng: Optional[np.random.Generator] = None,
        name: Optional[str] = None,
    ) -> AbstractSensor:
        if rng is None:
            if streams is None:
                raise ValueError("SensorRig.build needs either `streams` or an explicit `rng`")
            rng = streams.stream(self.stream)
        physical = PhysicalSensor(
            name=name or self.name,
            quantity=self.quantity,
            truth_fn=truth_fn,
            noise_sigma=self.noise_sigma,
            rng=rng,
        )
        return AbstractSensor(physical, detectors=list(self.detectors()))

    def lockstep_safe(self) -> bool:
        """Whether a fresh detector stack is eligible for lockstep batching.

        The vector engine models exactly the detectors in
        :data:`LOCKSTEP_SAFE_DETECTORS` (instances of them, not subclasses —
        a subclass may override the math); any other detector, or a
        detector factory that fails, keeps the rig on the scalar kernel.
        """
        try:
            stack = list(self.detectors())
        except Exception:  # noqa: BLE001 — an unbuildable stack is simply not eligible
            return False
        return all(type(detector) in LOCKSTEP_SAFE_DETECTORS for detector in stack)


class MetricProbe:
    """A named periodic sampler owning its accumulated samples and counters.

    The ``sampler`` callable receives the probe itself each period and feeds
    it through :meth:`add` / :meth:`increment`; the scenario's result
    assembly then reads :attr:`samples` and :meth:`count` instead of keeping
    ad-hoc private lists on the scenario object.
    """

    def __init__(
        self,
        name: str,
        period: float,
        sampler: Callable[["MetricProbe"], None],
    ):
        self.name = name
        self.period = period
        self.samples: List[Any] = []
        self.counters: Dict[str, int] = {}
        self._sampler = sampler

    def tick(self) -> None:
        self._sampler(self)

    # ------------------------------------------------------------ accumulation
    def add(self, value: Any) -> None:
        self.samples.append(value)

    def increment(self, key: str, by: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + by

    # ----------------------------------------------------------------- queries
    def count(self, key: str) -> int:
        return self.counters.get(key, 0)

    def mean(self, default: float = 0.0) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else default

    def share(self, value: Any) -> float:
        """Fraction of samples equal to ``value`` (0.0 when empty)."""
        if not self.samples:
            return 0.0
        return sum(1 for sample in self.samples if sample == value) / len(self.samples)
