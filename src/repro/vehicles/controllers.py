"""Longitudinal controllers and vertical profiles.

* :class:`CruiseController` — plain speed regulation (the non-cooperative
  fallback when no vehicle is ahead or no ranging data is trusted).
* :class:`AccController` — constant-time-gap adaptive cruise control using
  on-board ranging only (autonomous perception).
* :class:`CaccController` — cooperative ACC additionally using the
  predecessor's V2V-reported acceleration, enabling a smaller time gap (the
  higher LoS of use case VI-A.1).
* :class:`EmergencyBrake` — maximum braking, the fail-safe action.
* :class:`VerticalProfile` — climb/descent speed command for aircraft.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.vehicles.kinematics import clamp


@dataclass
class CruiseController:
    """Proportional speed regulation toward a target speed."""

    target_speed: float = 30.0
    gain: float = 0.5

    def acceleration(self, current_speed: float) -> float:
        return self.gain * (self.target_speed - current_speed)


@dataclass
class AccController:
    """Constant-time-gap ACC law.

    ``a = k_gap * (gap - standstill - v * time_gap) + k_speed * relative_speed``

    The time gap is the LoS-controlled safety parameter: the safety kernel
    enacts a larger time gap when the LoS degrades.
    """

    time_gap: float = 1.4
    standstill_distance: float = 5.0
    k_gap: float = 0.45
    k_speed: float = 0.9
    cruise: CruiseController = None
    #: While closing a large gap the follower may exceed the cruise speed by
    #: this factor (it cannot close the gap at all otherwise).
    catch_up_factor: float = 1.15

    def __post_init__(self) -> None:
        if self.time_gap <= 0:
            raise ValueError("time_gap must be positive")
        if self.cruise is None:
            self.cruise = CruiseController()

    def desired_gap(self, speed: float) -> float:
        return self.standstill_distance + self.time_gap * speed

    def acceleration(
        self,
        speed: float,
        gap: Optional[float],
        leader_speed: Optional[float],
    ) -> float:
        """Acceleration command given the measured gap and leader speed.

        With no leader information the controller falls back to cruising.
        """
        if gap is None or leader_speed is None:
            return self.cruise.acceleration(speed)
        gap_error = gap - self.desired_gap(speed)
        relative_speed = leader_speed - speed
        following = self.k_gap * gap_error + self.k_speed * relative_speed
        # Do not chase the leader faster than the catch-up speed allows.
        catch_up_limit = self.cruise.gain * (
            self.cruise.target_speed * self.catch_up_factor - speed
        )
        return min(following, catch_up_limit)


@dataclass
class CaccController:
    """Cooperative ACC: ACC plus a feed-forward term from V2V leader acceleration."""

    acc: AccController = None
    feedforward_gain: float = 0.6

    def __post_init__(self) -> None:
        if self.acc is None:
            self.acc = AccController(time_gap=0.6)

    @property
    def time_gap(self) -> float:
        return self.acc.time_gap

    def acceleration(
        self,
        speed: float,
        gap: Optional[float],
        leader_speed: Optional[float],
        leader_acceleration: Optional[float],
    ) -> float:
        base = self.acc.acceleration(speed, gap, leader_speed)
        if leader_acceleration is None:
            return base
        return base + self.feedforward_gain * leader_acceleration


@dataclass
class EmergencyBrake:
    """Fail-safe maximal braking."""

    deceleration: float = 8.0

    def acceleration(self) -> float:
        return -abs(self.deceleration)


@dataclass
class VerticalProfile:
    """Climb/descent command toward a target altitude with a bounded rate."""

    target_altitude: float
    climb_rate: float = 10.0
    tolerance: float = 5.0

    def vertical_speed(self, altitude: float) -> float:
        """Commanded vertical speed at the current altitude."""
        error = self.target_altitude - altitude
        if abs(error) <= self.tolerance:
            return 0.0
        return clamp(error, -self.climb_rate, self.climb_rate)

    def reached(self, altitude: float) -> bool:
        return abs(self.target_altitude - altitude) <= self.tolerance
