"""E4 — Self-stabilising TDMA convergence and GPS-free pulse alignment (section V-A.2).

Series 1: TDMA frames to convergence vs network size (grid topologies), with
and without churn.  Series 2: pulse-synchronisation rounds to align frame
starts below a threshold, with and without the correction algorithm.
"""

import numpy as np

from repro.evaluation.reporting import format_table
from repro.network.pulse_sync import PulseSyncConfig, PulseSyncNetwork
from repro.network.tdma import TdmaConfig, TdmaNetwork, grid_topology

from benchmarks.conftest import run_once

GRID_SIZES = ((2, 2), (3, 3), (4, 4), (5, 5))
SEEDS = (1, 2, 3)


def _tdma_convergence(rows_cols, slots, churn, seed):
    network = TdmaNetwork(TdmaConfig(slots_per_frame=slots), rng=np.random.default_rng(seed))
    for node, peers in grid_topology(*rows_cols).items():
        network.add_node(node, neighbors=peers)
    frames = network.run_until_converged(max_frames=3000)
    if churn:
        # A node joins with a deliberately conflicting slot; measure re-convergence.
        anchor = next(iter(network.nodes))
        network.add_node("joiner", neighbors={anchor}, slot=network.nodes[anchor].slot)
        extra = network.run_until_converged(max_frames=3000)
        frames = extra if frames is None else (frames or 0) + (extra or 3000)
    return frames


def _pulse_alignment(nodes, gain, seed):
    config = PulseSyncConfig(correction_gain=gain, pulse_loss_probability=0.05)
    network = PulseSyncNetwork(config, rng=np.random.default_rng(seed))
    names = [f"n{i}" for i in range(nodes)]
    for i, name in enumerate(names):
        neighbors = {names[i - 1]} if i else set()
        network.add_node(name, drift_ppm=40.0 * (i - nodes / 2), neighbors=neighbors)
    rounds = network.run_until_aligned(threshold=0.002, max_rounds=400)
    return rounds


def test_benchmark_e4_tdma_convergence(benchmark):
    def experiment():
        tdma_rows = []
        for rows_cols in GRID_SIZES:
            nodes = rows_cols[0] * rows_cols[1]
            slots = max(12, 2 * nodes // 2)
            base = [_tdma_convergence(rows_cols, slots, churn=False, seed=s) for s in SEEDS]
            churned = [_tdma_convergence(rows_cols, slots, churn=True, seed=s) for s in SEEDS]
            tdma_rows.append(
                {
                    "nodes": nodes,
                    "slots": slots,
                    "frames_to_converge_mean": float(np.mean([b for b in base if b is not None])),
                    "frames_with_churn_mean": float(np.mean([c for c in churned if c is not None])),
                    "converged_all": all(b is not None for b in base + churned),
                }
            )
        pulse_rows = []
        for nodes in (4, 8, 12):
            with_sync = [_pulse_alignment(nodes, gain=0.5, seed=s) for s in SEEDS]
            without_sync = [_pulse_alignment(nodes, gain=0.0, seed=s) for s in SEEDS]
            pulse_rows.append(
                {
                    "nodes": nodes,
                    "rounds_to_align_mean": float(np.mean([w for w in with_sync if w is not None])),
                    "aligned_all": all(w is not None for w in with_sync),
                    "aligned_without_sync": all(w is not None for w in without_sync),
                }
            )
        return tdma_rows, pulse_rows

    tdma_rows, pulse_rows = run_once(benchmark, experiment)
    print()
    print(format_table(tdma_rows, title="E4a: self-stabilising TDMA convergence (frames)"))
    print()
    print(format_table(pulse_rows, title="E4b: GPS-free pulse alignment (rounds to <2 ms misalignment)"))
    assert all(row["converged_all"] for row in tdma_rows)
    assert all(row["aligned_all"] for row in pulse_rows)
    # Without the correction algorithm, random initial phases stay misaligned.
    assert not all(row["aligned_without_sync"] for row in pulse_rows)
