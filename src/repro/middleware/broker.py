"""Per-node event broker: the FAMOUSO middleware instance of one node.

The broker binds the event-channel abstraction to an underlying transport
(an R2T-MAC node, a plain CSMA MAC node, or an in-vehicle
:class:`LocalBusTransport`).  It performs the announcement-time network
assessment, routes published events onto the transport, and dispatches
received events to local subscriptions whose subject and context filter
match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Union

from repro.middleware.channels import ChannelState, EventChannel, Subscription
from repro.middleware.events import ContextFilter, Event, Subject
from repro.middleware.qos import DeliveryGuarantee, NetworkAssessor, QoSSpec
from repro.network.frames import Frame, FrameKind
from repro.sim.kernel import Simulator


class Transport(Protocol):
    """What the broker needs from a transport (duck-typed)."""

    node_id: str

    def send(self, frame: Frame) -> bool:  # pragma: no cover - protocol
        ...

    def on_receive(self, listener: Callable[[Frame, float], None]) -> None:  # pragma: no cover
        ...


class LocalBusTransport:
    """A reliable, low-jitter in-vehicle bus (CAN-like) connecting local nodes.

    FAMOUSO "enables interaction over different communication media like the
    CAN field-bus ... and Ethernet" — the gateway bridges this bus with the
    wireless V2V network.
    """

    def __init__(self, simulator: Simulator, node_id: str, latency: float = 1e-3):
        self.simulator = simulator
        self.node_id = node_id
        self.latency = latency
        self._listeners: List[Callable[[Frame, float], None]] = []
        self._peers: List["LocalBusTransport"] = []
        self.sent = 0

    def connect(self, other: "LocalBusTransport") -> None:
        """Wire two bus endpoints together (both directions)."""
        if other not in self._peers:
            self._peers.append(other)
        if self not in other._peers:
            other._peers.append(self)

    def send(self, frame: Frame) -> bool:
        self.sent += 1
        delivery_time = self.simulator.now + self.latency
        for peer in self._peers:
            self.simulator.schedule(
                self.latency, lambda p=peer, f=frame, t=delivery_time: p._deliver(f, t)
            )
        return True

    def on_receive(self, listener: Callable[[Frame, float], None]) -> None:
        self._listeners.append(listener)

    def _deliver(self, frame: Frame, time: float) -> None:
        for listener in self._listeners:
            listener(frame, time)


class EventBroker:
    """Event middleware instance bound to one node and one transport."""

    def __init__(
        self,
        node_id: str,
        simulator: Simulator,
        transport: Transport,
        assessor: Optional[NetworkAssessor] = None,
        admission_control: bool = True,
    ):
        self.node_id = node_id
        self.simulator = simulator
        self.transport = transport
        self.assessor = assessor
        self.admission_control = admission_control
        self.channels: Dict[str, EventChannel] = {}
        self.subscriptions: Dict[str, List[Subscription]] = {}
        self.events_published = 0
        self.events_delivered = 0
        self.events_dropped_unusable = 0
        transport.on_receive(self._on_frame)

    # ----------------------------------------------------------------- announce
    def announce(self, subject: Union[Subject, str], spec: Optional[QoSSpec] = None) -> EventChannel:
        """Announce an event channel; performs the dynamic network assessment.

        Without an assessor (or with admission control disabled) every channel
        is accepted best-effort, which is the baseline configuration in E5.
        """
        subject = Subject(subject) if isinstance(subject, str) else subject
        spec = spec or QoSSpec()
        if not self.admission_control or self.assessor is None or spec.max_latency is None:
            channel = EventChannel(subject, spec, ChannelState.BEST_EFFORT)
        else:
            result = self.assessor.assess(subject.uid, spec)
            if result.admitted:
                self.assessor.reserve(f"{self.node_id}:{subject.uid}", spec)
                channel = EventChannel(
                    subject, spec, ChannelState.ADMITTED,
                    expected_latency=result.expected_latency,
                )
            else:
                channel = EventChannel(
                    subject, spec, ChannelState.REJECTED,
                    expected_latency=result.expected_latency,
                    reason=result.reason,
                )
        self.channels[subject.uid] = channel
        return channel

    def close(self, subject: Union[Subject, str]) -> None:
        uid = subject.uid if isinstance(subject, Subject) else subject
        channel = self.channels.get(uid)
        if channel is None:
            return
        channel.close()
        if self.assessor is not None:
            self.assessor.release(f"{self.node_id}:{uid}")

    # ---------------------------------------------------------------- subscribe
    def subscribe(
        self,
        subject: Union[Subject, str],
        callback: Callable[[Event], None],
        context_filter: Optional[ContextFilter] = None,
        subscriber_id: str = "",
    ) -> Subscription:
        """Register a local subscription for ``subject``."""
        subject = Subject(subject) if isinstance(subject, str) else subject
        subscription = Subscription(
            subject=subject,
            callback=callback,
            context_filter=context_filter or ContextFilter.accept_all(),
            subscriber_id=subscriber_id or self.node_id,
        )
        self.subscriptions.setdefault(subject.uid, []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        subs = self.subscriptions.get(subscription.subject.uid, [])
        if subscription in subs:
            subs.remove(subscription)

    # ------------------------------------------------------------------ publish
    def publish(
        self,
        subject: Union[Subject, str],
        content=None,
        context: Optional[dict] = None,
        quality: Optional[dict] = None,
        deadline: Optional[float] = None,
        kind: FrameKind = FrameKind.DATA,
    ) -> Optional[Event]:
        """Publish an event on a previously announced channel.

        Returns the event, or ``None`` when the channel is unusable (rejected
        or closed).  The event is also delivered to *local* subscribers, which
        models FAMOUSO's intra-node communication.
        """
        uid = subject.uid if isinstance(subject, Subject) else subject
        channel = self.channels.get(uid)
        if channel is None:
            channel = self.announce(uid)
        if not channel.is_usable:
            channel.note_rejected()
            self.events_dropped_unusable += 1
            return None
        now = self.simulator.now
        event = Event(
            subject=Subject(uid),
            content=content,
            context=dict(context or {}),
            quality=dict(quality or {}),
            published_at=now,
            publisher=self.node_id,
        )
        channel.note_publish()
        self.events_published += 1
        if deadline is None and channel.spec.max_latency is not None:
            deadline = now + channel.spec.max_latency
        frame = Frame(
            source=self.node_id,
            destination=None,
            payload=event,
            kind=kind,
            deadline=deadline,
            size_bits=channel.spec.payload_bits,
        )
        self.transport.send(frame)
        self._dispatch(event, now)
        return event

    # ---------------------------------------------------------------- internals
    def _on_frame(self, frame: Frame, time: float) -> None:
        event = frame.payload
        if not isinstance(event, Event):
            return
        latency = time - event.published_at
        channel = self.channels.get(event.subject.uid)
        if channel is not None:
            channel.observe_delivery(latency)
        self._dispatch(event, time)

    def _dispatch(self, event: Event, time: float) -> None:
        for subscription in self.subscriptions.get(event.subject.uid, []):
            if subscription.offer(event):
                self.events_delivered += 1
