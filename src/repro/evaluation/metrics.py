"""Safety and performance metric containers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence


@dataclass
class SafetyMetrics:
    """Safety-side outcomes of one run."""

    collisions: int = 0
    hazardous_states: int = 0
    rule_violations: int = 0
    min_time_gap: float = float("inf")
    min_separation: float = float("inf")

    @property
    def is_safe(self) -> bool:
        """No collision and no hazardous state observed."""
        return self.collisions == 0 and self.hazardous_states == 0


@dataclass
class PerformanceMetrics:
    """Performance-side outcomes of one run."""

    mean_speed: float = 0.0
    throughput: float = 0.0
    mean_headway: float = float("inf")
    mission_time: float = 0.0
    deliveries: int = 0
    deadline_miss_ratio: float = 0.0


#: Two-sided 95% Student-t critical values by degrees of freedom; beyond the
#: table the normal approximation (1.96) is close enough.
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t95(degrees_of_freedom: int) -> float:
    """Two-sided 95% t critical value (normal approximation past df=30)."""
    if degrees_of_freedom < 1:
        return 0.0
    if degrees_of_freedom <= len(_T95):
        return _T95[degrees_of_freedom - 1]
    return 1.96


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / 95% CI / min / max / p95 summary for a list of samples (NaN-free).

    ``ci95_low``/``ci95_high`` bound the *mean* with a Student-t interval
    (the sample sizes of seed campaigns are small, so the normal
    approximation would be too tight); with fewer than two samples the
    interval collapses to the mean.
    """
    clean = [v for v in values if v is not None and not math.isnan(v) and not math.isinf(v)]
    if not clean:
        return {
            "count": 0, "mean": 0.0, "ci95_low": 0.0, "ci95_high": 0.0,
            "min": 0.0, "max": 0.0, "p95": 0.0,
        }
    ordered = sorted(clean)
    count = len(ordered)
    mean = sum(ordered) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in ordered) / (count - 1)
        half_width = t95(count - 1) * math.sqrt(variance / count)
    else:
        half_width = 0.0
    p95_index = min(count - 1, int(round(0.95 * (count - 1))))
    return {
        "count": count,
        "mean": mean,
        "ci95_low": mean - half_width,
        "ci95_high": mean + half_width,
        "min": ordered[0],
        "max": ordered[-1],
        "p95": ordered[p95_index],
    }
