"""Distributed span tracing: where a campaign's wall-clock time actually goes.

A *trace* is the set of spans one campaign produced across every process
that touched it — coordinator, spool workers, multiprocessing pool
children, the vector backend — stitched together by explicit ids:

* every span carries ``trace`` (the campaign's trace id), ``span`` (its
  own id, unique across processes: ``<pid-hex>-<seq-hex>``) and ``parent``
  (the id of the span that caused it, or ``null`` for the root);
* ids are *propagated*, never inferred: the coordinator embeds its publish
  span's id in the spool task file, the worker parents its claim/task
  spans to it, cell spans parent to the task span, retry attempts parent
  to their cell, cache and shard-write spans to whatever ran them.

Spans append to per-process ``trace-<pid>.jsonl`` files in the trace
directory (the spool root for spool campaigns, ``<store>.trace/``
otherwise) with the same whole-line append discipline as ``events.jsonl``:
one small ``write()`` on an append-mode handle, so a crashing process
loses at most its open spans, never tears a line another process wrote.

**Off by default, free when off.**  The process-global :data:`TRACER` is
disabled unless explicitly configured (``run --trace`` / ``REPRO_TRACE_DIR``);
while disabled, :meth:`Tracer.span` returns a shared no-op span after one
attribute check — the same discipline as the telemetry registry, so the
perf-budget gate runs against un-instrumented-equivalent code.  Tracing
never draws seeded randomness and never contributes to result bytes: the
fingerprint suite re-runs all 20 pinned workloads with tracing enabled.

Timestamps: each process anchors ``time.time()`` against
``time.perf_counter()`` once at configure time and derives every span's
wall-clock ``ts`` from the monotonic clock, so spans within one process
nest *exactly* (a child's interval is contained in its parent's) and
cross-process alignment is as good as the hosts' wall clocks.  ``seq`` is
the per-process append counter; the merge orders spans monotonic-in-process
(file order per pid) with wall-clock as the cross-process tiebreak.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

TRACE_SCHEMA_VERSION = 1

#: Span categories the critical-path walk treats as "work" (everything
#: else — publish bookkeeping, cache probes — is overhead inside them).
WORK_CATS = frozenset({"cell", "task", "batch"})


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()
    span_id: Optional[str] = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set(self, **args: Any) -> None:
        """Attach args to the span (no-op while disabled)."""


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; appends one JSONL line when it exits."""

    __slots__ = ("_tracer", "name", "cat", "span_id", "parent", "args", "_start", "_prev")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str,
        span_id: str,
        parent: Optional[str],
        args: Dict[str, Any],
    ):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.span_id = span_id
        self.parent = parent
        self.args = args
        self._start = 0.0
        self._prev: Optional[str] = None

    def set(self, **args: Any) -> None:
        """Attach extra args to the span before it closes."""
        self.args.update(args)

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        self._prev = self._tracer._set_current(self.span_id)
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        end = time.perf_counter()
        self._tracer._restore_current(self._prev)
        self._tracer._append(
            {
                "ph": "X",
                "name": self.name,
                "cat": self.cat,
                "trace": self._tracer.trace_id,
                "span": self.span_id,
                "parent": self.parent,
                "ts": self._tracer._wall(self._start),
                "dur": round(end - self._start, 9),
                **({"args": self.args} if self.args else {}),
            }
        )
        return False


class Tracer:
    """Per-process span writer with explicit id propagation.

    One tracer per process; :meth:`configure` points it at a trace
    directory and a campaign trace id.  Safe to leave configured across
    ``fork``: the first span emitted in a forked child notices the pid
    change and re-anchors itself onto its own ``trace-<pid>.jsonl``.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.directory: Optional[Path] = None
        self.trace_id: Optional[str] = None
        self.source: Optional[str] = None
        #: Span lines lost to OSError; tracing must never fail a campaign.
        self.dropped = 0
        self._pid = 0
        self._seq = 0
        self._anchor_wall = 0.0
        self._anchor_perf = 0.0
        self._lock = threading.Lock()
        self._local = threading.local()

    # -------------------------------------------------------------- lifecycle
    def configure(
        self,
        directory: Union[str, os.PathLike],
        trace_id: Optional[str] = None,
        source: Optional[str] = None,
    ) -> str:
        """Enable tracing into ``directory``; returns the trace id."""
        self.directory = Path(directory)
        self.trace_id = trace_id or new_trace_id()
        self.source = source
        self.enabled = True
        self._rebind()
        return self.trace_id

    def disable(self) -> None:
        self.enabled = False
        self.directory = None
        self.trace_id = None
        self.source = None

    def _rebind(self) -> None:
        """(Re-)anchor this process: own pid, own file, own clock anchor."""
        self._pid = os.getpid()
        self._seq = 0
        self._anchor_wall = time.time()
        self._anchor_perf = time.perf_counter()

    @property
    def path(self) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"trace-{self._pid}.jsonl"

    # ------------------------------------------------------------------ spans
    def span(
        self,
        name: str,
        cat: str = "span",
        parent: Any = ...,
        **args: Any,
    ):
        """A context manager recording one span of ``name``.

        ``parent`` defaults to the current in-process span (the enclosing
        ``with`` block); pass an explicit id — e.g. one read from a spool
        task file — to stitch across processes, or ``None`` for a root.
        """
        if not self.enabled:
            return _NULL_SPAN
        if os.getpid() != self._pid:
            self._rebind()
        with self._lock:
            self._seq += 1
            span_id = f"{self._pid:x}-{self._seq:x}"
        resolved = self.current_parent if parent is ... else parent
        return _Span(self, name, cat, span_id, resolved, dict(args))

    def instant(
        self,
        name: str,
        cat: str = "event",
        parent: Any = ...,
        **args: Any,
    ) -> None:
        """Record one zero-duration event (Chrome ``ph: "i"``)."""
        if not self.enabled:
            return
        if os.getpid() != self._pid:
            self._rebind()
        with self._lock:
            self._seq += 1
            span_id = f"{self._pid:x}-{self._seq:x}"
        resolved = self.current_parent if parent is ... else parent
        self._append(
            {
                "ph": "i",
                "name": name,
                "cat": cat,
                "trace": self.trace_id,
                "span": span_id,
                "parent": resolved,
                "ts": self._wall(time.perf_counter()),
                **({"args": args} if args else {}),
            }
        )

    # ---------------------------------------------------------- parent context
    @property
    def current_parent(self) -> Optional[str]:
        return getattr(self._local, "parent", None)

    def _set_current(self, span_id: Optional[str]) -> Optional[str]:
        previous = getattr(self._local, "parent", None)
        self._local.parent = span_id
        return previous

    def _restore_current(self, span_id: Optional[str]) -> None:
        self._local.parent = span_id

    def parent_scope(self, span_id: Optional[str]):
        """Context manager making ``span_id`` the default parent inside it.

        Used to adopt a *foreign* parent — e.g. a worker parenting its task
        span to the coordinator's publish span id read from the task file.
        """
        tracer = self

        class _Scope:
            __slots__ = ("_prev",)

            def __enter__(self) -> None:
                self._prev = tracer._set_current(span_id)

            def __exit__(self, *exc_info: Any) -> bool:
                tracer._restore_current(self._prev)
                return False

        return _Scope()

    # -------------------------------------------------------------- internals
    def _wall(self, perf_stamp: float) -> float:
        return round(self._anchor_wall + (perf_stamp - self._anchor_perf), 6)

    def _append(self, event: Dict[str, Any]) -> None:
        path = self.path
        if path is None:
            return
        event["pid"] = self._pid
        if self.source is not None:
            event["tid"] = self.source
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            try:
                with path.open("a", encoding="utf-8") as handle:
                    handle.write(json.dumps(event, sort_keys=True) + "\n")
            except OSError:
                self.dropped += 1


#: The process-global tracer every instrumented subsystem writes through.
TRACER = Tracer()

#: Environment variable that pre-configures the tracer at import time, so
#: multiprocessing pool children and spawned spool workers inherit tracing
#: without any in-band plumbing.  ``REPRO_TRACE_ID`` pins the trace id.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"
TRACE_ID_ENV = "REPRO_TRACE_ID"


def get_tracer() -> Tracer:
    return TRACER


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (os.urandom-backed; physics-blind)."""
    return uuid.uuid4().hex[:16]


def enable_tracing(
    directory: Union[str, os.PathLike],
    trace_id: Optional[str] = None,
    source: Optional[str] = None,
    export_env: bool = False,
) -> str:
    """Configure the global tracer; optionally export it to child processes."""
    Path(directory).mkdir(parents=True, exist_ok=True)
    trace_id = TRACER.configure(directory, trace_id=trace_id, source=source)
    if export_env:
        os.environ[TRACE_DIR_ENV] = str(Path(directory).resolve())
        os.environ[TRACE_ID_ENV] = trace_id
    return trace_id


def disable_tracing() -> None:
    TRACER.disable()
    os.environ.pop(TRACE_DIR_ENV, None)
    os.environ.pop(TRACE_ID_ENV, None)


def _adopt_env_tracing() -> None:
    directory = os.environ.get(TRACE_DIR_ENV)
    if directory and Path(directory).is_dir():
        TRACER.configure(directory, trace_id=os.environ.get(TRACE_ID_ENV))


_adopt_env_tracing()


# ---------------------------------------------------------------------------
# Reading, merging, exporting
# ---------------------------------------------------------------------------


def read_trace_file(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """One process's spans in file (= monotonic-in-process) order."""
    spans: List[Dict[str, Any]] = []
    try:
        handle = Path(path).open("r", encoding="utf-8")
    except OSError:
        return spans
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except ValueError:
                continue  # torn final line of a live trace
            if isinstance(span, dict) and "ts" in span:
                spans.append(span)
    return spans


def resolve_trace_dir(target: Union[str, os.PathLike]) -> Path:
    """Map a spool dir, store path, or trace dir onto its trace directory."""
    path = Path(target)
    if path.is_dir():
        return path
    return Path(f"{target}.trace")


def merge_trace_files(directory: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Every ``trace-*.jsonl`` span, globally ordered.

    Order within one process is its file order (the per-process ``seq`` is
    monotonic, so file order *is* causal order there); across processes the
    merge is a k-way merge on wall-clock ``ts`` — the only clock the
    processes share — so an earlier-``ts`` span from another pid sorts
    first, but two spans of one pid can never be reordered by clock skew.
    """
    directory = Path(directory)
    streams = [
        read_trace_file(path) for path in sorted(directory.glob("trace-*.jsonl"))
    ]
    streams = [stream for stream in streams if stream]
    cursors = [0] * len(streams)
    merged: List[Dict[str, Any]] = []
    while True:
        best: Optional[int] = None
        best_key: Optional[Tuple[float, int]] = None
        for i, stream in enumerate(streams):
            if cursors[i] >= len(stream):
                continue
            head = stream[cursors[i]]
            key = (float(head.get("ts", 0.0)), int(head.get("pid", 0)))
            if best_key is None or key < best_key:
                best, best_key = i, key
        if best is None:
            return merged
        merged.append(streams[best][cursors[best]])
        cursors[best] += 1


def _span_label(span: Dict[str, Any]) -> str:
    args = span.get("args") or {}
    bits = [str(span.get("name", "?"))]
    scenario = args.get("scenario")
    if scenario:
        bits.append(str(scenario))
    seed = args.get("seed")
    if seed is not None:
        bits.append(f"seed={seed}")
    task = args.get("task")
    if task and span.get("name") != "cell":
        bits.append(str(task))
    return " ".join(bits)


def export_chrome_trace(spans: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert merged spans to Chrome trace-event JSON (Perfetto-loadable).

    Complete spans become ``ph: "X"`` events with microsecond ``ts``/``dur``;
    instants become ``ph: "i"``.  Each distinct ``(pid, tid-label)`` pair
    gets its own integer thread lane plus ``thread_name`` metadata, so a
    spool campaign renders one lane per worker (and one for the
    coordinator) in ``chrome://tracing`` / https://ui.perfetto.dev.
    """
    events: List[Dict[str, Any]] = []
    lanes: Dict[Tuple[int, str], int] = {}
    named_pids: Dict[int, str] = {}
    for span in spans:
        pid = int(span.get("pid", 0))
        label = str(span.get("tid", "") or f"pid-{pid}")
        lane = lanes.get((pid, label))
        if lane is None:
            lane = len([key for key in lanes if key[0] == pid]) + 1
            lanes[(pid, label)] = lane
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": lane,
                    "args": {"name": label},
                }
            )
            if pid not in named_pids:
                named_pids[pid] = label
                events.append(
                    {
                        "ph": "M",
                        "name": "process_name",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": label},
                    }
                )
        event: Dict[str, Any] = {
            "ph": "i" if span.get("ph") == "i" else "X",
            "name": str(span.get("name", "?")),
            "cat": str(span.get("cat", "span")),
            "ts": round(float(span.get("ts", 0.0)) * 1e6, 3),
            "pid": pid,
            "tid": lane,
        }
        if event["ph"] == "X":
            event["dur"] = round(float(span.get("dur", 0.0)) * 1e6, 3)
        else:
            event["s"] = "t"  # instant scope: thread
        args = dict(span.get("args") or {})
        args["span"] = span.get("span")
        if span.get("parent"):
            args["parent"] = span.get("parent")
        event["args"] = args
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA_VERSION},
    }


def summarize_trace(
    spans: Sequence[Dict[str, Any]],
    top: int = 5,
    straggler_k: float = 3.0,
) -> Dict[str, Any]:
    """Per-phase totals, slowest cells and a straggler report.

    ``phases`` aggregates wall seconds by span name+category over the
    complete spans; ``slowest_cells`` ranks the ``cell``-category spans;
    ``stragglers`` lists cells slower than ``straggler_k`` times the
    median cell — the feed for ROADMAP 3's speculative re-publish.
    """
    phases: Dict[Tuple[str, str], Dict[str, Any]] = {}
    cells: List[Dict[str, Any]] = []
    for span in spans:
        if span.get("ph") == "i":
            continue
        dur = float(span.get("dur", 0.0))
        key = (str(span.get("cat", "span")), str(span.get("name", "?")))
        stats = phases.get(key)
        if stats is None:
            phases[key] = {"cat": key[0], "name": key[1], "count": 1, "total_s": dur, "max_s": dur}
        else:
            stats["count"] += 1
            stats["total_s"] += dur
            stats["max_s"] = max(stats["max_s"], dur)
        if span.get("cat") == "cell":
            cells.append(span)
    cells.sort(key=lambda span: float(span.get("dur", 0.0)), reverse=True)
    durations = sorted(float(span.get("dur", 0.0)) for span in cells)
    median = durations[len(durations) // 2] if durations else 0.0
    threshold = straggler_k * median
    stragglers = [
        span for span in cells if median > 0.0 and float(span.get("dur", 0.0)) > threshold
    ]

    def cell_row(span: Dict[str, Any]) -> Dict[str, Any]:
        args = span.get("args") or {}
        return {
            "cell": _span_label(span),
            "seed": args.get("seed"),
            "dur_s": round(float(span.get("dur", 0.0)), 6),
            "worker": str(span.get("tid", "") or span.get("pid", "?")),
            "span": span.get("span"),
        }

    return {
        "spans": sum(1 for span in spans if span.get("ph") != "i"),
        "processes": len({span.get("pid") for span in spans}),
        "phases": sorted(phases.values(), key=lambda row: -row["total_s"]),
        "cells": len(cells),
        "median_cell_s": round(median, 6),
        "slowest_cells": [cell_row(span) for span in cells[: max(0, top)]],
        "straggler_threshold_s": round(threshold, 6),
        "stragglers": [cell_row(span) for span in stragglers],
    }


def critical_path(
    spans: Sequence[Dict[str, Any]],
    cats: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """The span chain bounding campaign wall-clock, with idle-gap attribution.

    Walks backwards from the instant the last work span finished: at each
    point in time, charge the interval to the work span covering it (the
    one with the latest start); where nothing was running, record an
    *idle gap* attributed to the spans on either side.  The chain's
    contributions plus the gaps partition the campaign's wall-clock
    exactly, so ``sum(chain dur) + sum(gap dur) == wall_clock_s``.

    ``cats`` selects the work categories (default :data:`WORK_CATS`); a
    campaign-category span, when present, sets the wall-clock bounds.
    """
    wanted = frozenset(cats) if cats is not None else WORK_CATS
    work = [
        span
        for span in spans
        if span.get("ph") != "i" and span.get("cat") in wanted and "dur" in span
    ]
    bounds = [span for span in spans if span.get("cat") == "campaign" and "dur" in span]
    if bounds:
        root = max(bounds, key=lambda span: float(span["dur"]))
        start_bound = float(root["ts"])
        end_bound = start_bound + float(root["dur"])
    elif work:
        start_bound = min(float(span["ts"]) for span in work)
        end_bound = max(float(span["ts"]) + float(span["dur"]) for span in work)
    else:
        return {"wall_clock_s": 0.0, "chain": [], "gaps": [], "covered_s": 0.0, "idle_s": 0.0}

    intervals = [
        (float(span["ts"]), float(span["ts"]) + float(span["dur"]), span)
        for span in work
        if float(span["ts"]) < end_bound and float(span["ts"]) + float(span["dur"]) > start_bound
    ]
    chain: List[Dict[str, Any]] = []
    gaps: List[Dict[str, Any]] = []
    epsilon = 1e-9
    t = end_bound
    while t > start_bound + epsilon:
        covering = [item for item in intervals if item[0] < t - epsilon and item[1] >= t - epsilon]
        if covering:
            begin, _, span = max(covering, key=lambda item: item[0])
            begin = max(begin, start_bound)
            chain.append(
                {
                    "span": span.get("span"),
                    "name": _span_label(span),
                    "cat": span.get("cat"),
                    "worker": str(span.get("tid", "") or span.get("pid", "?")),
                    "start_s": round(begin - start_bound, 6),
                    "dur_s": round(t - begin, 6),
                }
            )
            t = begin
            continue
        before = [item for item in intervals if item[1] < t - epsilon]
        if not before:
            gaps.append(
                {
                    "after": "campaign start",
                    "before": chain[-1]["name"] if chain else "campaign end",
                    "start_s": 0.0,
                    "dur_s": round(t - start_bound, 6),
                }
            )
            break
        _, end, span = max(before, key=lambda item: item[1])
        gaps.append(
            {
                "after": _span_label(span),
                "before": chain[-1]["name"] if chain else "campaign end",
                "start_s": round(end - start_bound, 6),
                "dur_s": round(t - end, 6),
            }
        )
        t = end
    chain.reverse()
    gaps.reverse()
    covered = sum(entry["dur_s"] for entry in chain)
    idle = sum(gap["dur_s"] for gap in gaps)
    return {
        "wall_clock_s": round(end_bound - start_bound, 6),
        "chain": chain,
        "gaps": gaps,
        "covered_s": round(covered, 6),
        "idle_s": round(idle, 6),
    }
