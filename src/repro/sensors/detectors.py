"""Failure detectors for continuous-valued sensors.

MOSAIC "distinguishes between two types of failure detectors: a) dominant
detectors that render a result invalid (i.e. a validity of 0) if they detect
a failure, and b) other detectors that lead to a certain continuous validity
estimate" (section IV-B).  Each detector here reports a
:class:`DetectorVerdict` with a suspicion in ``[0, 1]`` and a ``dominant``
flag; the fault-management unit (:mod:`repro.sensors.validity`) combines the
verdicts into the data-validity attribute.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, List, Optional

from repro.sensors.readings import SensorReading


@dataclass(frozen=True)
class DetectorVerdict:
    """Outcome of one detector for one reading."""

    detector: str
    suspicion: float  # 0.0 = looks correct, 1.0 = certainly faulty
    dominant: bool = False
    reason: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.suspicion <= 1.0:
            raise ValueError(f"suspicion must be in [0, 1], got {self.suspicion}")

    @property
    def invalidates(self) -> bool:
        """A dominant detector with full suspicion forces validity to zero."""
        return self.dominant and self.suspicion >= 1.0


class FailureDetector:
    """Base class for per-reading failure detectors."""

    #: Dominant detectors force validity to 0 when they fire (paper Fig 3,
    #: solid dots); non-dominant detectors contribute a continuous estimate.
    dominant: bool = False

    def __init__(self, name: str):
        self.name = name
        self.evaluations = 0
        self.detections = 0

    def check(self, reading: SensorReading, now: float) -> DetectorVerdict:
        """Evaluate one reading; must be overridden."""
        raise NotImplementedError

    def _verdict(self, suspicion: float, reason: str = "") -> DetectorVerdict:
        self.evaluations += 1
        if suspicion > 0:
            self.detections += 1
        return DetectorVerdict(
            detector=self.name,
            suspicion=float(min(1.0, max(0.0, suspicion))),
            dominant=self.dominant,
            reason=reason,
        )

    def reset(self) -> None:
        """Clear detector history (sensor restart)."""


class RangeDetector(FailureDetector):
    """Dominant detector: the value must lie within a physical range."""

    dominant = True

    def __init__(self, low: float, high: float, name: str = "range"):
        super().__init__(name)
        if high < low:
            raise ValueError(f"range high {high} < low {low}")
        self.low = low
        self.high = high

    def check(self, reading: SensorReading, now: float) -> DetectorVerdict:
        if reading.value < self.low or reading.value > self.high:
            return self._verdict(1.0, f"value {reading.value} outside [{self.low}, {self.high}]")
        return self._verdict(0.0)


class RateLimitDetector(FailureDetector):
    """The measured quantity cannot change faster than ``max_rate`` per second.

    Suspicion grows linearly with the excess rate; it is a continuous
    (non-dominant) detector because a large-but-plausible jump may be real.
    """

    dominant = False

    def __init__(self, max_rate: float, name: str = "rate_limit", hard_factor: float = 4.0):
        super().__init__(name)
        if max_rate <= 0:
            raise ValueError("max_rate must be positive")
        self.max_rate = max_rate
        self.hard_factor = hard_factor
        self._last: Optional[SensorReading] = None

    def check(self, reading: SensorReading, now: float) -> DetectorVerdict:
        last = self._last
        self._last = reading
        if last is None:
            return self._verdict(0.0)
        dt = reading.timestamp - last.timestamp
        if dt <= 0:
            return self._verdict(0.0)
        rate = abs(reading.value - last.value) / dt
        if rate <= self.max_rate:
            return self._verdict(0.0)
        excess = (rate - self.max_rate) / (self.max_rate * (self.hard_factor - 1.0))
        return self._verdict(min(1.0, excess), f"rate {rate:.2f} exceeds {self.max_rate:.2f}")

    def reset(self) -> None:
        self._last = None


class TimeoutDetector(FailureDetector):
    """Dominant detector for delay/omission faults: readings must be fresh."""

    dominant = True

    def __init__(self, max_age: float, name: str = "timeout"):
        super().__init__(name)
        if max_age <= 0:
            raise ValueError("max_age must be positive")
        self.max_age = max_age

    def check(self, reading: SensorReading, now: float) -> DetectorVerdict:
        age = reading.age(now)
        if age > self.max_age:
            return self._verdict(1.0, f"reading age {age:.3f}s exceeds {self.max_age:.3f}s")
        return self._verdict(0.0)


class StuckAtDetector(FailureDetector):
    """Detects a frozen output: suspicion rises once the value stops changing.

    The detector keeps the last ``window`` readings; if the spread of values
    is below ``epsilon`` while the reference quantity is expected to vary,
    suspicion increases with the run length of identical values.
    """

    dominant = False

    def __init__(
        self,
        window: int = 8,
        epsilon: float = 1e-9,
        min_run: int = 3,
        name: str = "stuck_at",
    ):
        super().__init__(name)
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self.epsilon = epsilon
        self.min_run = min_run
        self._history: Deque[float] = deque(maxlen=window)

    def check(self, reading: SensorReading, now: float) -> DetectorVerdict:
        self._history.append(reading.value)
        if len(self._history) < self.min_run:
            return self._verdict(0.0)
        run = 1
        values = list(self._history)
        for previous, current in zip(reversed(values[:-1]), reversed(values[1:])):
            if abs(current - previous) <= self.epsilon:
                run += 1
            else:
                break
        if run < self.min_run:
            return self._verdict(0.0)
        suspicion = (run - self.min_run + 1) / (self.window - self.min_run + 1)
        return self._verdict(min(1.0, suspicion), f"value frozen for {run} samples")

    def reset(self) -> None:
        self._history.clear()


class ModelResidualDetector(FailureDetector):
    """Analytical-redundancy detector: compares the reading with a model prediction.

    ``model`` maps the current simulated time to the expected value (e.g. a
    kinematic prediction from other sensors).  Suspicion grows with the
    residual normalised by ``tolerance``.
    """

    dominant = False

    def __init__(
        self,
        model: Callable[[float], float],
        tolerance: float,
        name: str = "model_residual",
        hard_factor: float = 4.0,
    ):
        super().__init__(name)
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.model = model
        self.tolerance = tolerance
        self.hard_factor = hard_factor

    def check(self, reading: SensorReading, now: float) -> DetectorVerdict:
        expected = self.model(reading.timestamp)
        residual = abs(reading.value - expected)
        if residual <= self.tolerance:
            return self._verdict(0.0)
        excess = (residual - self.tolerance) / (self.tolerance * (self.hard_factor - 1.0))
        return self._verdict(
            min(1.0, excess), f"residual {residual:.3f} exceeds tolerance {self.tolerance:.3f}"
        )


class CrossValidationDetector(FailureDetector):
    """Component-redundancy detector: compares against peer readings.

    The peer supplier returns the most recent readings of redundant sensors
    measuring the same quantity; the detector flags readings far from the
    peer median.
    """

    dominant = False

    def __init__(
        self,
        peer_supplier: Callable[[], Iterable[SensorReading]],
        tolerance: float,
        name: str = "cross_validation",
        hard_factor: float = 4.0,
    ):
        super().__init__(name)
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.peer_supplier = peer_supplier
        self.tolerance = tolerance
        self.hard_factor = hard_factor

    def check(self, reading: SensorReading, now: float) -> DetectorVerdict:
        peers: List[float] = [p.value for p in self.peer_supplier() if p.is_valid]
        if len(peers) < 2:
            return self._verdict(0.0)
        peers_sorted = sorted(peers)
        mid = len(peers_sorted) // 2
        if len(peers_sorted) % 2:
            median = peers_sorted[mid]
        else:
            median = 0.5 * (peers_sorted[mid - 1] + peers_sorted[mid])
        deviation = abs(reading.value - median)
        if deviation <= self.tolerance:
            return self._verdict(0.0)
        excess = (deviation - self.tolerance) / (self.tolerance * (self.hard_factor - 1.0))
        return self._verdict(
            min(1.0, excess),
            f"deviation {deviation:.3f} from peer median {median:.3f}",
        )
