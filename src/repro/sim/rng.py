"""Named, seeded random streams.

Every stochastic component (wireless medium, sensor noise, fault injector,
traffic generator) draws from its own named stream so that changing one
component's random consumption does not perturb the others — a prerequisite
for the paired comparisons in the E1–E9 experiments.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class ChunkedNormals:
    """Standard-normal draws pre-fetched in chunks on a scalar-identical stream.

    ``standard_normal(n)`` consumes the generator exactly like ``n``
    successive scalar draws, so refilling an internal buffer in chunks
    yields the same per-sample values as never batching — this is the
    refill schedule :class:`~repro.sensors.abstract_sensor.PhysicalSensor`
    uses for measurement noise, extracted here so the lockstep vector
    programs (:mod:`repro.vectorized`) can reproduce it verbatim.

    ``next(chunk=1)`` degrades to one draw per call for consumers whose
    RNG is shared with another draw site (e.g. an RNG-drawing fault) and
    must interleave exactly as unbatched.
    """

    def __init__(self, rng: np.random.Generator, chunk: int = 128):
        if int(chunk) < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self.rng = rng
        self.chunk = int(chunk)
        self._buffer = np.empty(0)
        self._index = 0

    def next(self, chunk: int | None = None) -> float:
        """The next standard-normal value; refills by ``chunk`` (default
        the instance chunk) when the buffer is exhausted."""
        index = self._index
        buffer = self._buffer
        if index >= buffer.shape[0]:
            size = self.chunk if chunk is None else int(chunk)
            buffer = self._buffer = self.rng.standard_normal(size)
            index = 0
        self._index = index + 1
        return buffer[index]

    def predraw(self, count: int) -> np.ndarray:
        """The next ``count`` values as one array, drawn chunk-by-chunk.

        Bitwise identical to calling :meth:`next` ``count`` times from a
        fresh instance — the batch form the vector programs use to build a
        whole noise row in one go.
        """
        chunks = []
        drawn = 0
        while drawn < count:
            chunks.append(self.rng.standard_normal(self.chunk))
            drawn += self.chunk
        if not chunks:
            return np.empty(0)
        return np.concatenate(chunks)[:count]


class RandomStreams:
    """Factory of independent, reproducible ``numpy`` generators."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child :class:`RandomStreams` (e.g. one per vehicle)."""
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[8:16], "little"))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RandomStreams(master_seed={self.master_seed}, streams={sorted(self._streams)})"
