"""Urban-grid platooning: several platoons on parallel city streets, one spectrum.

The ROADMAP's first new workload.  ``streets`` platoons drive on parallel
streets of a city grid.  Each street is one lane of a shared
:class:`~repro.vehicles.world.HighwayWorld`; streets are offset along the
road axis by ``grid_spacing`` metres, so the spacing directly controls how
strongly the platoons' V2V traffic couples over the shared wireless medium
(close streets contend, far streets are radio-isolated).  Leaders brake in a
staggered pattern (``brake_stagger`` seconds apart), so the safety kernels
on different streets face their critical windows under different channel
load.

The whole scenario is harness composition: it reuses the platoon use case's
:class:`~repro.usecases.acc.FollowerAgent` (perception, controllers, safety
kernel, enactment) unchanged — only the world/radio/leader wiring differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.middleware.qos import QoSSpec
from repro.network.medium import MediumConfig
from repro.scenario import MetricProbe, NodeSpec, RadioPreset, ScenarioHarness, WorldSpec
from repro.usecases.acc import (
    FollowerAgent,
    LeaderProfile,
    PlatoonConfig,
    V2V_SUBJECT,
    aggregate_kernel_los,
    broadcast_vehicle_state,
    sample_follower_hazards,
)
from repro.vehicles.vehicle import Vehicle


@dataclass
class UrbanGridConfig(PlatoonConfig):
    """Platoon parameters plus the grid geometry."""

    #: Number of parallel streets (one platoon each).
    streets: int = 3
    #: Offset between street origins along the road axis, in metres; smaller
    #: spacing couples the platoons' V2V traffic more strongly.
    grid_spacing: float = 150.0
    #: First leader's braking onset and per-street stagger, in seconds.
    brake_start: float = 15.0
    brake_stagger: float = 6.0


@dataclass
class UrbanGridResults:
    """Aggregate safety/performance over the whole grid."""

    streets: int
    variant: str
    collisions: int
    hazardous_states: int
    min_time_gap: float
    mean_time_gap: float
    mean_speed: float
    throughput: float
    downgrades: int
    los_residency: Dict[str, float]
    frames_sent: int
    delivery_ratio: float

    def as_row(self) -> Dict[str, object]:
        from repro.evaluation.rows import usecase_row

        return usecase_row(self)


class UrbanGridScenario:
    """Builds and runs one urban-grid platooning scenario."""

    def __init__(self, config: UrbanGridConfig | None = None):
        self.config = config or UrbanGridConfig()
        config = self.config
        self.harness = ScenarioHarness(
            seed=config.seed,
            radio=RadioPreset(
                mac="r2t" if config.use_r2t_mac else "csma",
                medium=MediumConfig(base_loss_probability=config.base_loss_probability),
            ),
            world=WorldSpec("highway", lanes=config.streets, step_period=config.world_step),
        )
        self.simulator = self.harness.simulator
        self.trace = self.harness.trace
        self.world = self.harness.world
        self.medium = self.harness.medium
        self.transports = self.harness.transports
        self.brokers = self.harness.brokers
        self.leaders: List[Vehicle] = []
        self.followers: List[FollowerAgent] = []
        self._hazard_probe: MetricProbe | None = None
        self._build()

    # ------------------------------------------------------------------- build
    def _build(self) -> None:
        config = self.config
        vehicle_count = config.followers + 1
        for street in range(config.streets):
            origin = street * config.grid_spacing
            vehicles: List[Vehicle] = []
            for i in range(vehicle_count):
                vehicle = Vehicle(vehicle_id=f"g{street}v{i}", lane=street)
                vehicle.state.position = origin + (vehicle_count - 1 - i) * config.initial_spacing
                vehicle.state.speed = config.leader_profile.cruise_speed
                vehicles.append(vehicle)
                self.harness.add_node(
                    NodeSpec(
                        node_id=vehicle.vehicle_id,
                        position_fn=(lambda v=vehicle: v.xy()),
                        announce=(
                            (
                                V2V_SUBJECT,
                                QoSSpec(rate_hz=1.0 / config.v2v_period, max_latency=None),
                            ),
                        ),
                    )
                )

            leader = vehicles[0]
            self.leaders.append(leader)
            profile = LeaderProfile(
                cruise_speed=config.leader_profile.cruise_speed,
                braking_episodes=(
                    (config.brake_start + street * config.brake_stagger, 4.0, 12.0),
                ),
                acceleration_gain=config.leader_profile.acceleration_gain,
            )
            self.world.add_vehicle(
                leader,
                controller=(lambda now, p=profile, v=leader: p.acceleration(now, v.speed)),
            )
            self.simulator.periodic(
                config.v2v_period,
                lambda v=leader: self._broadcast_vehicle_state(v),
                name=f"v2v:{leader.vehicle_id}",
            )

            for i in range(1, vehicle_count):
                follower = FollowerAgent(
                    index=street * vehicle_count + i,
                    vehicle=vehicles[i],
                    predecessor=vehicles[i - 1],
                    scenario=self,
                )
                self.followers.append(follower)
                self.world.add_vehicle(vehicles[i], controller=follower.control)
                self.simulator.periodic(
                    config.v2v_period,
                    lambda v=vehicles[i]: self._broadcast_vehicle_state(v),
                    name=f"v2v:{vehicles[i].vehicle_id}",
                )

        self.harness.add_interference_bursts(config.interference_bursts)
        self._hazard_probe = self.harness.add_probe(
            MetricProbe("hazard-monitor", config.world_step, self._sample_hazards)
        )
        self.world.start()

    # --------------------------------------------------------------- behaviour
    def _broadcast_vehicle_state(self, vehicle: Vehicle) -> None:
        broadcast_vehicle_state(self.brokers, vehicle)

    def _sample_hazards(self, probe: MetricProbe) -> None:
        sample_follower_hazards(
            self.followers, self.config.hazard_time_gap, self.trace, self.simulator.now, probe
        )

    # --------------------------------------------------------------------- run
    def run(self) -> UrbanGridResults:
        self.simulator.run_until(self.config.duration)
        probe = self._hazard_probe
        kernels = [f.kernel for f in self.followers if f.kernel is not None]
        residency, downgrades, _max_cycle, _max_switch = aggregate_kernel_los(kernels)
        stats = self.medium.stats
        return UrbanGridResults(
            streets=self.config.streets,
            variant=self.config.variant.value,
            collisions=len(self.world.collisions),
            hazardous_states=probe.count("hazardous_states"),
            min_time_gap=self.world.min_time_gap_observed,
            mean_time_gap=probe.mean(default=float("inf")),
            mean_speed=self.world.mean_speed(),
            throughput=self.world.throughput_estimate(),
            downgrades=downgrades,
            los_residency=residency,
            frames_sent=stats.frames_sent,
            delivery_ratio=stats.delivery_ratio,
        )
