"""MOSAIC smart-sensor node (paper Fig 3).

A MOSAIC node combines:

* an **input layer** of abstract sensors (``Sensor A`` in the figure), which
  may monitor transducer delays/omissions;
* **application modules** (``Detection 0/1``, ``Module 2``) that process the
  sensor stream and may themselves emit failure-detection results;
* a crosscutting **fault management** unit combining all detection results
  into the data validity;
* an **abstract communication layer** that disseminates typed events; and
* an **electronic data sheet** describing the node's static properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sensors.abstract_sensor import AbstractSensor
from repro.sensors.detectors import DetectorVerdict
from repro.sensors.readings import SensorReading
from repro.sensors.validity import FaultManagementUnit, ValidityPolicy


@dataclass
class ElectronicDataSheet:
    """Static, machine-readable description of a MOSAIC component.

    "Static properties and information of a MOSAIC component are described in
    an electronic data sheet stored on the node" (section IV-B).
    """

    node_id: str
    quantity: str
    unit: str = ""
    sampling_period: float = 0.1
    value_range: Optional[tuple] = None
    accuracy: float = 0.0
    vendor: str = "repro"
    description: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node_id": self.node_id,
            "quantity": self.quantity,
            "unit": self.unit,
            "sampling_period": self.sampling_period,
            "value_range": self.value_range,
            "accuracy": self.accuracy,
            "vendor": self.vendor,
            "description": self.description,
            **self.extra,
        }


class ApplicationModule:
    """A processing stage inside a MOSAIC node.

    ``transform`` maps the incoming reading to the outgoing reading (e.g. a
    filter or a unit conversion); ``detect`` optionally returns a
    :class:`DetectorVerdict` that feeds the node's fault management unit —
    this is how "Detection 0" and "Detection 1" in Fig 3 contribute failure
    information.
    """

    def __init__(
        self,
        name: str,
        transform: Optional[Callable[[SensorReading], SensorReading]] = None,
        detect: Optional[Callable[[SensorReading, float], Optional[DetectorVerdict]]] = None,
        dominant: bool = False,
    ):
        self.name = name
        self.transform = transform
        self.detect = detect
        self.dominant = dominant
        self.processed = 0

    def process(
        self, reading: SensorReading, now: float
    ) -> tuple[SensorReading, Optional[DetectorVerdict]]:
        self.processed += 1
        verdict = self.detect(reading, now) if self.detect else None
        output = self.transform(reading) if self.transform else reading
        return output, verdict


class MosaicNode:
    """A smart sensor/actuator node as structured in Fig 3 of the paper.

    The node samples its input layer, pipes the reading through its
    application modules, lets the fault-management unit compute the final
    data validity, and hands the result to ``publish`` (the abstract
    communication layer — typically an event-channel publisher from
    :mod:`repro.middleware`).
    """

    def __init__(
        self,
        datasheet: ElectronicDataSheet,
        input_sensor: AbstractSensor,
        modules: Optional[Sequence[ApplicationModule]] = None,
        publish: Optional[Callable[[SensorReading], None]] = None,
        policy: ValidityPolicy = ValidityPolicy.PRODUCT,
    ):
        self.datasheet = datasheet
        self.input_sensor = input_sensor
        self.modules: List[ApplicationModule] = list(modules) if modules else []
        self.publish = publish
        self.fault_management = FaultManagementUnit(policy=policy)
        self.outputs: List[SensorReading] = []
        self.omissions = 0

    @property
    def node_id(self) -> str:
        return self.datasheet.node_id

    def add_module(self, module: ApplicationModule) -> None:
        self.modules.append(module)

    def step(self, now: float) -> Optional[SensorReading]:
        """One acquisition/processing/dissemination cycle.

        Returns the published reading, or ``None`` if the input layer omitted
        a sample this cycle.
        """
        reading = self.input_sensor.read(now)
        if reading is None:
            self.omissions += 1
            return None
        # Verdicts gathered so far: the input layer's own detectors...
        verdicts: List[DetectorVerdict] = list(self.input_sensor.last_verdicts)
        # ...plus each application module's detection result.
        for module in self.modules:
            reading, verdict = module.process(reading, now)
            if verdict is not None:
                verdicts.append(verdict)
        final = self.fault_management.assess(reading, verdicts)
        self.outputs.append(final)
        if self.publish is not None:
            self.publish(final)
        return final

    def run_on(self, simulator, period: Optional[float] = None, name: Optional[str] = None):
        """Register the node's sampling loop as a periodic task on ``simulator``."""
        period = period if period is not None else self.datasheet.sampling_period
        return simulator.periodic(
            period,
            lambda: self.step(simulator.now),
            name=name or f"mosaic:{self.node_id}",
        )
