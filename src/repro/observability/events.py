"""Append-only JSONL event log for campaign observability.

Every interesting campaign transition is one JSON line appended to a
shared ``events.jsonl`` (for spool campaigns it lives inside the spool
directory, next to ``progress.json``).  Appends are a single small
``write()`` on a file opened in append mode, so concurrent workers and the
coordinator interleave whole lines, never fragments, and file order is the
global append order.

The taxonomy is closed (:data:`EVENT_KINDS`) so consumers — ``tail``, the
tests, the future control plane — can rely on it:

=================== ========================================================
kind                emitted when
=================== ========================================================
``campaign_start``    coordinator published a campaign's tasks onto a spool
``campaign_complete`` every cell has a merged result (or the campaign aborted)
``task_claimed``      a worker won the atomic claim on a task file
``task_completed``    a worker wrote the task's result shard
``task_reclaimed``    an expired lease was re-queued (dead/stalled worker)
``worker_start``      a worker process entered its claim loop
``worker_idle``       a worker found nothing claimable (once per idle stretch)
``worker_exit``       a worker left its loop (reason: complete/max_tasks/idle)
``worker_dead``       the coordinator observed a spawned worker exit early
``worker_respawn``    the coordinator started a replacement for a dead worker
``cache_hit``         a cell was served from the content-addressed cache
``cache_miss``        a cell was consulted against the cache and not found
``campaign_resumed``  a restarted coordinator adopted an interrupted campaign
``shard_torn``        a result shard failed sha256 verification (re-executed)
``task_quarantined``  a poison task was retired after repeated failed claims
``vector_batch``      the vector backend settled a lockstep seed batch
``vector_evict``      a seed was evicted from a batch to the scalar kernel
``task_speculated``   the coordinator re-published a straggler's task copy
``task_superseded``   a late shard arrived after its copy already won
``shard_split``       an idle worker split an oversized pending task in two
``cell_timeout``      a worker's watchdog killed a cell past its deadline
=================== ========================================================

Schema note (v3 of this taxonomy, PR 10): the elastic-scheduling kinds
carry ``task`` plus — for ``task_speculated`` — the ``copy`` id and the
observed ``claim_age_s``; ``shard_split`` carries the two ``halves``;
``cell_timeout`` carries ``index`` and ``seconds``.
Schema note (v2 of this taxonomy, PR 9): ``vector_batch`` carries
``scenario``, ``size`` (seeds in the batch), ``verified`` (probe byte-match)
and ``elapsed_s``; ``vector_evict`` carries ``scenario``, ``seed`` and
``reason`` (``preflight``/``midflight``).  Readers must stay tolerant of
kinds they do not know: ``read_events``/``follow_events`` filter by the
*requested* kinds only and pass every other well-formed line through.

Event timestamps are wall-clock and appear **only** here and in progress
files — never in result records, so stores stay byte-identical with
observability on.  Emission is best-effort: an unwritable log counts the
drop and never fails the campaign.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Union

from repro.resilience.faults import inject

EVENT_KINDS = frozenset(
    {
        "campaign_start",
        "campaign_complete",
        "task_claimed",
        "task_completed",
        "task_reclaimed",
        "worker_start",
        "worker_idle",
        "worker_exit",
        "worker_dead",
        "worker_respawn",
        "cache_hit",
        "cache_miss",
        "campaign_resumed",
        "shard_torn",
        "task_quarantined",
        "vector_batch",
        "vector_evict",
        "task_speculated",
        "task_superseded",
        "shard_split",
        "cell_timeout",
    }
)


class EventLog:
    """One process's handle on a shared append-only event file.

    ``source`` (e.g. a worker id or ``"coordinator"``) is stamped on every
    event.  The log never creates the target directory: a worker pointed at
    a spool the coordinator has not initialised yet must not conjure it
    into existence, so such emissions are dropped (and counted) instead.
    """

    def __init__(self, path: Union[str, os.PathLike], source: Optional[str] = None):
        self.path = Path(path)
        self.source = source
        #: Events lost to OSError (missing directory, full disk); campaigns
        #: must never fail because observability could not write.
        self.dropped = 0

    def emit(self, kind: str, **fields: Any) -> Optional[Dict[str, Any]]:
        """Append one event line; returns the event dict, or ``None`` if dropped."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; known: {', '.join(sorted(EVENT_KINDS))}"
            )
        event: Dict[str, Any] = {"ts": round(time.time(), 6), "kind": kind}
        if self.source is not None:
            event["source"] = self.source
        event.update(fields)
        try:
            inject("events.emit", kind=kind)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        except OSError:
            self.dropped += 1
            return None
        return event


def read_events(
    path: Union[str, os.PathLike], kinds: Optional[Iterable[str]] = None
) -> List[Dict[str, Any]]:
    """Every parseable event in file order; missing file yields ``[]``."""
    wanted = frozenset(kinds) if kinds is not None else None
    events: List[Dict[str, Any]] = []
    try:
        handle = Path(path).open("r", encoding="utf-8")
    except OSError:
        return events
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue  # torn final line of a live log
            if not isinstance(event, dict):
                continue
            if wanted is not None and event.get("kind") not in wanted:
                continue
            events.append(event)
    return events


def follow_events(
    path: Union[str, os.PathLike],
    poll_interval: float = 0.2,
    stop: Optional[Callable[[], bool]] = None,
    kinds: Optional[Iterable[str]] = None,
) -> Iterator[Dict[str, Any]]:
    """Yield events as they are appended (``tail --follow``).

    Polls the file for growth; returns once ``stop()`` is truthy *and* no
    unread data remains (so events racing the stop condition still drain).
    Without ``stop`` it follows forever — callers handle KeyboardInterrupt.
    """
    wanted = frozenset(kinds) if kinds is not None else None
    path = Path(path)
    offset = 0
    buffer = b""
    while True:
        try:
            with path.open("rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
        except OSError:
            chunk = b""
        if chunk:
            offset += len(chunk)
            buffer += chunk
            *lines, buffer = buffer.split(b"\n")
            for raw in lines:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    event = json.loads(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    continue
                if not isinstance(event, dict):
                    continue
                if wanted is not None and event.get("kind") not in wanted:
                    continue
                yield event
        else:
            if stop is not None and stop():
                return
            time.sleep(poll_interval)
