"""Component health model.

Section III's fault model: "Computing components above the hybridization line
can fail by crashing or doing timing faults. ... Communication components
above the hybridization line can experience crash or timing faults, but do
not corrupt data.  Actuators are assumed not to fail."

:class:`ComponentRegistry` keeps the vehicle's component inventory annotated
with its position relative to the hybridisation line, tracks heartbeats to
detect crash/timing faults, and produces the health booleans consumed by the
Run Time Safety Information collector.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class ComponentKind(enum.Enum):
    SENSOR = "sensor"
    COMPUTING = "computing"
    COMMUNICATION = "communication"
    ACTUATOR = "actuator"


class ComponentState(enum.Enum):
    HEALTHY = "healthy"
    TIMING_FAULT = "timing_fault"
    CRASHED = "crashed"


@dataclass
class ComponentRecord:
    """Registry entry for one component."""

    name: str
    kind: ComponentKind
    #: True when the component sits below the hybridisation line (predictable,
    #: bounds proven at design time); False for the uncertain part.
    predictable: bool
    heartbeat_deadline: Optional[float] = None
    last_heartbeat: Optional[float] = None
    state: ComponentState = ComponentState.HEALTHY
    timing_faults: int = 0

    def is_healthy(self, now: float) -> bool:
        if self.state is ComponentState.CRASHED:
            return False
        if self.heartbeat_deadline is None:
            return self.state is ComponentState.HEALTHY
        if self.last_heartbeat is None:
            return False
        if now - self.last_heartbeat > self.heartbeat_deadline:
            return False
        return True


class ComponentRegistry:
    """The vehicle's component inventory and its health tracking."""

    def __init__(self):
        self._components: Dict[str, ComponentRecord] = {}

    # --------------------------------------------------------------- inventory
    def register(
        self,
        name: str,
        kind: ComponentKind,
        predictable: bool,
        heartbeat_deadline: Optional[float] = None,
    ) -> ComponentRecord:
        """Register a component; actuators must be predictable (they never fail)."""
        if kind is ComponentKind.ACTUATOR and not predictable:
            raise ValueError(
                "actuators are below the hybridisation line by assumption (they do not fail)"
            )
        if name in self._components:
            raise ValueError(f"component {name!r} already registered")
        record = ComponentRecord(
            name=name,
            kind=kind,
            predictable=predictable,
            heartbeat_deadline=heartbeat_deadline,
        )
        self._components[name] = record
        return record

    def get(self, name: str) -> ComponentRecord:
        return self._components[name]

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def components(self, kind: Optional[ComponentKind] = None,
                   predictable: Optional[bool] = None) -> List[ComponentRecord]:
        """Filtered component listing (e.g. everything above the hybridisation line)."""
        records = list(self._components.values())
        if kind is not None:
            records = [r for r in records if r.kind is kind]
        if predictable is not None:
            records = [r for r in records if r.predictable is predictable]
        return records

    # ------------------------------------------------------------------ events
    def heartbeat(self, name: str, time: float) -> None:
        """Record a liveness indication from a component."""
        record = self._components[name]
        if record.state is ComponentState.TIMING_FAULT:
            # A fresh heartbeat clears a previous timing fault (but not a crash).
            record.state = ComponentState.HEALTHY
        record.last_heartbeat = time

    def mark_crashed(self, name: str) -> None:
        self._components[name].state = ComponentState.CRASHED

    def mark_timing_fault(self, name: str) -> None:
        record = self._components[name]
        if record.state is not ComponentState.CRASHED:
            record.state = ComponentState.TIMING_FAULT
            record.timing_faults += 1

    def restore(self, name: str, time: Optional[float] = None) -> None:
        """Bring a crashed/faulty component back to service."""
        record = self._components[name]
        record.state = ComponentState.HEALTHY
        if time is not None:
            record.last_heartbeat = time

    # ----------------------------------------------------------------- queries
    def is_healthy(self, name: str, now: float) -> bool:
        record = self._components.get(name)
        if record is None:
            return False
        return record.is_healthy(now)

    def health_report(self, now: float) -> Dict[str, bool]:
        """Health booleans for every registered component."""
        return {name: record.is_healthy(now) for name, record in self._components.items()}

    def unhealthy(self, now: float) -> List[str]:
        return [name for name, healthy in self.health_report(now).items() if not healthy]
