#!/usr/bin/env python3
"""Highway platooning with the KARYON safety kernel (paper use case VI-A.1).

Runs the same platoon scenario under the three architecture variants compared
in experiment E1 — KARYON safety kernel, always-cooperative (no kernel), and
never-cooperative — while a communication blackout hits during a hard-braking
episode of the leader.  Prints the resulting safety/performance table.

Run with:  python examples/platoon_highway.py
"""

from repro.evaluation.reporting import format_table
from repro.usecases.acc import ArchitectureVariant, PlatoonConfig, PlatoonScenario


def main() -> None:
    rows = []
    for variant in ArchitectureVariant:
        config = PlatoonConfig(
            followers=4,
            duration=60.0,
            variant=variant,
            interference_bursts=((18.0, 8.0),),   # blackout overlapping the braking episode
            seed=1,
        )
        result = PlatoonScenario(config).run()
        rows.append(result.as_row())
    print(format_table(rows, title="Platoon under a communication blackout (leader brakes at t=20s)"))
    print()
    print("Reading the table:")
    print(" * karyon              -> no collisions, throughput close to always_cooperative")
    print(" * always_cooperative  -> collisions/hazards: stale V2V data was trusted blindly")
    print(" * never_cooperative   -> safe but pays a large time margin (low throughput)")


if __name__ == "__main__":
    main()
