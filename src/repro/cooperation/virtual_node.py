"""Virtual (stationary and mobile) nodes.

Section V-C: "One of these approaches is based on virtual nodes that maintain
shared finite state machines that tile the plane [10].  These state machines
can monitor the activity in a given region, such as intersections, or a
cluster of vehicles that cruise on the highway by consider[ing] mobile
virtual nodes [11]."

A :class:`VirtualStationaryNode` is a replicated state machine associated
with a plane region; the vehicles currently inside the region host it.  The
host with the smallest identifier acts as the emulation leader: it applies
commands to the state machine and broadcasts state updates so a new leader
can take over when vehicles leave the region (state hand-off).  The virtual
traffic light of use case VI-A.2 is implemented as a state machine on top of
this primitive (see :mod:`repro.usecases.intersection`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class VirtualNodeRegion:
    """A rectangular region of the plane hosting one virtual node."""

    name: str
    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ValueError("region must have positive area")

    def contains(self, position: Tuple[float, float]) -> bool:
        x, y = position[0], position[1]
        return self.x_min <= x <= self.x_max and self.y_min <= y <= self.y_max

    @property
    def center(self) -> Tuple[float, float]:
        return (0.5 * (self.x_min + self.x_max), 0.5 * (self.y_min + self.y_max))


def plane_tiling(
    x_range: Tuple[float, float],
    y_range: Tuple[float, float],
    tile_size: float,
    prefix: str = "tile",
) -> List[VirtualNodeRegion]:
    """Tile a rectangle of the plane with square virtual-node regions."""
    if tile_size <= 0:
        raise ValueError("tile_size must be positive")
    regions: List[VirtualNodeRegion] = []
    x = x_range[0]
    row = 0
    while x < x_range[1]:
        y = y_range[0]
        col = 0
        while y < y_range[1]:
            regions.append(
                VirtualNodeRegion(
                    name=f"{prefix}_{row}_{col}",
                    x_min=x,
                    y_min=y,
                    x_max=min(x + tile_size, x_range[1]),
                    y_max=min(y + tile_size, y_range[1]),
                )
            )
            y += tile_size
            col += 1
        x += tile_size
        row += 1
    return regions


class VirtualStationaryNode:
    """A replicated state machine bound to a region.

    ``initial_state`` produces the state machine's initial state and
    ``transition`` maps ``(state, command) -> (new_state, output)``.  The node
    itself is passive; :class:`VirtualNodeHost` instances decide who emulates
    it and keep replicas synchronised.
    """

    def __init__(
        self,
        region: VirtualNodeRegion,
        initial_state: Callable[[], Any],
        transition: Callable[[Any, Any], Tuple[Any, Any]],
    ):
        self.region = region
        self.initial_state = initial_state
        self.transition = transition

    def name(self) -> str:
        return self.region.name


class VirtualNodeHost:
    """Per-vehicle participation in the emulation of virtual nodes.

    The host with the smallest identifier among the vehicles currently inside
    a region is that region's *leader*; only the leader applies commands, and
    every applied command (with its sequence number and resulting state) is
    broadcast so followers keep a hot copy.  When the leader leaves, the next
    host resumes from the highest sequence number it has seen — the hand-off
    the paper's virtual-node approach depends on.
    """

    def __init__(
        self,
        own_id: str,
        broadcast: Callable[[dict], None],
        nodes: Optional[List[VirtualStationaryNode]] = None,
    ):
        self.own_id = own_id
        self.broadcast = broadcast
        self.nodes: Dict[str, VirtualStationaryNode] = {n.name(): n for n in (nodes or [])}
        self._states: Dict[str, Any] = {}
        self._sequence: Dict[str, int] = {}
        self._position: Tuple[float, float] = (0.0, 0.0)
        self._peer_positions: Dict[str, Tuple[float, float]] = {}
        self.commands_applied = 0
        self.outputs: List[Tuple[str, Any]] = []

    # ------------------------------------------------------------------ inputs
    def register_node(self, node: VirtualStationaryNode) -> None:
        self.nodes[node.name()] = node

    def update_position(self, position: Tuple[float, float]) -> None:
        self._position = position

    def observe_peer(self, peer_id: str, position: Tuple[float, float]) -> None:
        if peer_id != self.own_id:
            self._peer_positions[peer_id] = position

    def forget_peer(self, peer_id: str) -> None:
        self._peer_positions.pop(peer_id, None)

    # --------------------------------------------------------------- leadership
    def hosts_in_region(self, node_name: str) -> List[str]:
        node = self.nodes[node_name]
        inside = [
            peer
            for peer, position in self._peer_positions.items()
            if node.region.contains(position)
        ]
        if node.region.contains(self._position):
            inside.append(self.own_id)
        return sorted(inside)

    def is_leader(self, node_name: str) -> bool:
        hosts = self.hosts_in_region(node_name)
        return bool(hosts) and hosts[0] == self.own_id

    # ---------------------------------------------------------------- execution
    def state_of(self, node_name: str) -> Any:
        if node_name not in self._states:
            self._states[node_name] = self.nodes[node_name].initial_state()
            self._sequence[node_name] = 0
        return self._states[node_name]

    def submit(self, node_name: str, command: Any) -> Optional[Any]:
        """Apply ``command`` to the virtual node if this host is its leader.

        Returns the state machine output, or ``None`` when this host is not
        the leader (the command should then be routed to the leader or
        retried).
        """
        if not self.is_leader(node_name):
            return None
        node = self.nodes[node_name]
        state = self.state_of(node_name)
        new_state, output = node.transition(state, command)
        self._states[node_name] = new_state
        self._sequence[node_name] += 1
        self.commands_applied += 1
        self.outputs.append((node_name, output))
        self.broadcast(
            {
                "type": "vn_state",
                "node": node_name,
                "sequence": self._sequence[node_name],
                "state": new_state,
                "leader": self.own_id,
            }
        )
        return output

    def on_message(self, message: dict) -> None:
        """Absorb a replicated state update from the current leader."""
        if message.get("type") != "vn_state":
            return
        node_name = message["node"]
        if node_name not in self.nodes:
            return
        sequence = message["sequence"]
        if sequence > self._sequence.get(node_name, 0):
            self._sequence[node_name] = sequence
            self._states[node_name] = message["state"]

    def sequence_of(self, node_name: str) -> int:
        return self._sequence.get(node_name, 0)
