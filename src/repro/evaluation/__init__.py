"""Evaluation toolkit: fault-injection campaigns and ISO 26262-style bookkeeping.

The paper's evaluation plan is "computer simulations with fault injection
support to experimentally evaluate safety assurance according to the ISO
26262 safety standard" (section I).  This subpackage provides the campaign
runner, the safety/performance metric containers and the safety-case verdict
used by the benchmark harness.
"""

from repro.evaluation.metrics import SafetyMetrics, PerformanceMetrics, summarize, t95
from repro.evaluation.campaign import FaultCampaign, CampaignRun, CampaignSummary
from repro.evaluation.iso26262 import SafetyCase, GoalAssessment, Verdict
from repro.evaluation.reporting import format_table, format_series
from repro.evaluation.rows import ROW_COLUMNS, usecase_row

__all__ = [
    "SafetyMetrics",
    "PerformanceMetrics",
    "summarize",
    "t95",
    "ROW_COLUMNS",
    "usecase_row",
    "FaultCampaign",
    "CampaignRun",
    "CampaignSummary",
    "SafetyCase",
    "GoalAssessment",
    "Verdict",
    "format_table",
    "format_series",
]
