"""Tests for ``repro.resilience`` and the crash-consistency it buys.

Covers the robustness acceptance criteria: deterministic fault plans,
retry/backoff/classification and the circuit breaker, sha256 shard
trailers detecting torn writes, poison-task quarantine (library + CLI),
cache repair-on-read and graceful degradation, chaos campaigns (worker
crashes + torn shards + corrupt cache objects) converging byte-identical
to the fault-free serial store, and coordinator kill/restart resume.
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.distributed import (
    CacheIndex,
    Spool,
    SpoolBackend,
    SpoolDispatchError,
    SpoolTask,
    TornShardError,
    merge_spool_results,
    run_worker,
)
from repro.distributed.spool import shard_cells
from repro.experiments import (
    ParallelCampaignRunner,
    ResultStore,
    RunRecord,
    RunSpec,
    ScenarioSpec,
    execute_run_with_retry,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.registry import load_builtin_scenarios
from repro.experiments.spec import parameters_from_signature
from repro.observability.events import EVENT_KINDS, EventLog, read_events
from repro.observability.progress import ProgressTracker
from repro.resilience import (
    GENERATION_ENV,
    PLAN_ENV,
    CircuitBreaker,
    FaultPlan,
    FaultRule,
    InjectedFaultError,
    RetryPolicy,
    TransientError,
    armed,
    armed_plan,
    classify_error,
    inject,
)


def _demo_cells(seeds):
    spec = load_builtin_scenarios().get("demo/random_walk")
    run_specs = spec.runs(seeds=seeds)
    return spec, [(rs.params, rs.seed, rs.index) for rs in run_specs]


def _adhoc_spec(factory, name="adhoc"):
    return ScenarioSpec(
        name=name,
        factory=factory,
        parameters=parameters_from_signature(factory),
        metric_fields=("value",),
    )


def _no_sleep(_seconds):
    return None


# --------------------------------------------------------------------------
# Fault plans
# --------------------------------------------------------------------------


class TestFaultPlan:
    def test_unarmed_inject_is_a_noop(self):
        assert armed_plan() is None
        assert inject("spool.write_shard", task="task-00000") is None

    def test_rule_counters_at_every_times(self):
        rule = FaultRule(point="p", kind="stall", at=2, every=2, times=2)
        plan = FaultPlan([rule])
        fired = [plan.fire("p", {}) for _ in range(6)]
        assert [hit is not None for hit in fired] == [
            False, True, False, True, False, False,
        ]
        assert plan.fired_counts() == {"p:stall": 2}

    def test_rule_match_filters_on_context(self):
        plan = FaultPlan(
            [FaultRule(point="p", kind="stall", match={"task": "task-00001"}, times=None)]
        )
        assert plan.fire("p", {"task": "task-00000"}) is None
        assert plan.fire("p", {"task": "task-00001"}) is not None
        assert plan.fire("other", {"task": "task-00001"}) is None

    def test_generation_gating(self, monkeypatch):
        plan = FaultPlan([FaultRule(point="p", kind="stall", max_generation=0, times=None)])
        monkeypatch.setenv(GENERATION_ENV, "1")
        assert plan.fire("p", {}) is None
        monkeypatch.setenv(GENERATION_ENV, "0")
        assert plan.fire("p", {}) is not None

    def test_io_error_rule_raises_oserror_at_the_point(self):
        plan = FaultPlan([FaultRule(point="p", kind="io_error")])
        with armed(plan):
            with pytest.raises(InjectedFaultError) as excinfo:
                inject("p")
        assert isinstance(excinfo.value, OSError)
        assert excinfo.value.point == "p"

    def test_invalid_rules_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(point="p", kind="explode")
        with pytest.raises(ValueError, match="at is 1-based"):
            FaultRule(point="p", kind="stall", at=0)

    def test_plan_serialisation_roundtrip(self, tmp_path):
        plan = FaultPlan(
            [
                FaultRule(point="worker.cell", kind="crash", at=3, max_generation=0),
                FaultRule(
                    point="spool.write_shard", kind="torn_write",
                    match={"task": "task-00002"}, args={"keep_bytes": 7},
                ),
            ],
            seed=42,
        )
        path = plan.save(tmp_path / "plan.json")
        loaded = FaultPlan.load(path)
        assert loaded.seed == 42
        assert loaded.rules == plan.rules

    def test_armed_context_restores_previous_plan(self):
        outer = FaultPlan([FaultRule(point="p", kind="stall", times=None)])
        inner = FaultPlan([])
        with armed(outer):
            with armed(inner):
                assert armed_plan() is inner
            assert armed_plan() is outer
        assert armed_plan() is None


# --------------------------------------------------------------------------
# Retry policy / circuit breaker
# --------------------------------------------------------------------------


class TestRetryPolicy:
    def test_classification(self):
        assert classify_error(OSError("disk")) == "transient"
        assert classify_error(TimeoutError()) == "transient"
        assert classify_error(TransientError("blip")) == "transient"
        assert classify_error(ValueError("bad params")) == "deterministic"
        assert classify_error(AssertionError()) == "deterministic"

    def test_should_retry_honours_attempt_cap_and_class(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(OSError(), 1)
        assert policy.should_retry(OSError(), 2)
        assert not policy.should_retry(OSError(), 3)
        assert not policy.should_retry(ValueError(), 1)

    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0, jitter=0.5)
        for attempt in (1, 2, 3, 6):
            raw = min(1.0, 0.1 * 2.0 ** (attempt - 1))
            delay = policy.delay(attempt, key="cell")
            assert delay == policy.delay(attempt, key="cell")  # seeded jitter
            assert 0.5 * raw <= delay <= 1.5 * raw
        # Different keys jitter differently (with overwhelming likelihood).
        assert policy.delay(1, key="a") != policy.delay(1, key="b")

    def test_call_retries_transient_and_reraises_deterministic(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("blip")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        assert policy.call(flaky, key="k", sleep=_no_sleep) == "ok"
        assert calls["n"] == 3

        def broken():
            raise ValueError("always")

        with pytest.raises(ValueError):
            policy.call(broken, key="k", sleep=_no_sleep)

    def test_circuit_breaker_opens_and_gates_only_sleeps(self):
        breaker = CircuitBreaker(threshold=2)
        assert not breaker.record_failure("s")
        assert breaker.record_failure("s")  # newly opened
        assert not breaker.record_failure("s")  # already open
        assert breaker.is_open("s")
        assert breaker.open_keys() == ("s",)
        assert breaker.gate_delay("s", 1.5) == 0.0
        assert breaker.gate_delay("other", 1.5) == 1.5
        breaker.record_success("s")
        assert not breaker.is_open("s")


# --------------------------------------------------------------------------
# Retries around cell execution
# --------------------------------------------------------------------------


class TestExecuteRunWithRetry:
    def _flaky_spec(self, fail_times, exc_type=TransientError):
        calls = {"n": 0}

        def factory(seed, scale=1.0):
            calls["n"] += 1
            if calls["n"] <= fail_times:
                raise exc_type("blip")
            return {"value": seed * scale}

        return _adhoc_spec(factory), calls

    def test_transient_failure_retried_to_success(self):
        spec, calls = self._flaky_spec(2)
        record = execute_run_with_retry(
            spec,
            RunSpec(scenario="adhoc", params={"scale": 1.0}, seed=1, index=0),
            policy=RetryPolicy(max_attempts=3, base_delay=0.0),
            sleep=_no_sleep,
        )
        assert record.ok
        assert record.attempts == 3
        assert calls["n"] == 3

    def test_retried_ok_record_serialises_identically_to_first_try(self):
        flaky_spec, _ = self._flaky_spec(2)
        clean_spec, _ = self._flaky_spec(0)
        run_spec = RunSpec(scenario="adhoc", params={"scale": 1.0}, seed=1, index=0)
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        retried = execute_run_with_retry(flaky_spec, run_spec, policy=policy, sleep=_no_sleep)
        clean = execute_run_with_retry(clean_spec, run_spec, policy=policy, sleep=_no_sleep)
        assert retried.attempts == 3 and clean.attempts == 1
        # The byte-identity invariant: attempt counts never serialise for
        # successful records.
        assert "attempts" not in retried.to_json_dict()
        assert retried.to_json_dict() == clean.to_json_dict()

    def test_deterministic_failure_is_not_retried(self):
        spec, calls = self._flaky_spec(5, exc_type=ValueError)
        record = execute_run_with_retry(
            spec,
            RunSpec(scenario="adhoc", params={"scale": 1.0}, seed=1, index=0),
            policy=RetryPolicy(max_attempts=3, base_delay=0.0),
            sleep=_no_sleep,
        )
        assert not record.ok
        assert calls["n"] == 1
        payload = record.to_json_dict()
        assert payload["attempts"] == 1
        assert payload["error_class"] == "ValueError"

    def test_exhausted_transient_failure_carries_attempts_and_class(self):
        spec, calls = self._flaky_spec(5)
        record = execute_run_with_retry(
            spec,
            RunSpec(scenario="adhoc", params={"scale": 1.0}, seed=1, index=0),
            policy=RetryPolicy(max_attempts=3, base_delay=0.0),
            sleep=_no_sleep,
        )
        assert not record.ok
        assert calls["n"] == 3
        assert record.attempts == 3
        assert record.error_class == "TransientError"
        assert record.exception is None  # stripped before crossing boundaries
        roundtripped = RunRecord.from_json_dict(record.to_json_dict())
        assert roundtripped.attempts == 3
        assert roundtripped.error_class == "TransientError"

    def test_failed_records_identical_across_backends(self, tmp_path):
        """A failing cell produces the same stored bytes serial or parallel."""

        def factory(seed, scale=1.0):
            raise ValueError(f"broken for seed {seed}")

        from repro.experiments import ScenarioRegistry

        registry = ScenarioRegistry()
        registry.register(_adhoc_spec(factory, name="probe/broken"))
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        ParallelCampaignRunner(jobs=1, registry=registry, store=ResultStore(serial)).run(
            "probe/broken", seeds=[1, 2]
        )
        ParallelCampaignRunner(jobs=2, registry=registry, store=ResultStore(parallel)).run(
            "probe/broken", seeds=[1, 2]
        )
        assert serial.read_bytes() == parallel.read_bytes()
        record = ResultStore(serial).records()[0]
        assert record.attempts == 1
        assert record.error_class == "ValueError"


# --------------------------------------------------------------------------
# Shard trailers / torn-write detection
# --------------------------------------------------------------------------


class TestShardTrailers:
    def _spool_with_shard(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        spool.initialise()
        record = RunRecord(scenario="s", params={"a": 1}, seed=1, metrics={"m": 2.0})
        spool.write_result_shard("task-00000", [(0, record)])
        return spool

    def test_truncated_shard_is_detected(self, tmp_path):
        spool = self._spool_with_shard(tmp_path)
        shard = spool.results_dir / "task-00000.jsonl"
        content = shard.read_text()
        shard.write_text(content[: len(content) // 2])
        assert not spool.verify_shard("task-00000")
        with pytest.raises(TornShardError, match="task-00000"):
            spool.read_result_shard("task-00000")
        with pytest.raises(SpoolDispatchError, match="torn result shard"):
            merge_spool_results(spool)

    def test_missing_trailer_is_detected(self, tmp_path):
        spool = self._spool_with_shard(tmp_path)
        shard = spool.results_dir / "task-00000.jsonl"
        lines = shard.read_text().splitlines()
        shard.write_text(lines[0] + "\n")  # records only, trailer dropped
        with pytest.raises(TornShardError, match="missing sha256 trailer"):
            spool.read_result_shard("task-00000")

    def test_injected_torn_write_lands_a_detectable_shard(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        spool.initialise()
        record = RunRecord(scenario="s", params={}, seed=1, metrics={"m": 1.0})
        plan = FaultPlan([FaultRule(point="spool.write_shard", kind="torn_write")])
        with armed(plan):
            spool.write_result_shard("task-00000", [(0, record)])
        assert plan.fired_counts() == {"spool.write_shard:torn_write": 1}
        assert not spool.verify_shard("task-00000")
        # The same write without the fault is clean.
        spool.write_result_shard("task-00000", [(0, record)])
        assert spool.verify_shard("task-00000")

    def test_reclaim_drops_torn_shard_and_requeues(self, tmp_path):
        """A worker that died mid-shard-write (claim held, torn shard on
        disk) must have its task re-queued, not settled."""
        spool = Spool(tmp_path / "spool", lease_timeout=5.0)
        spool.initialise()
        _, cells = _demo_cells([1])
        (task,) = shard_cells(cells, "demo/random_walk", task_size=1)
        spool.publish_task(task)
        claimed = spool.claim_next()
        plan = FaultPlan([FaultRule(point="spool.write_shard", kind="torn_write")])
        with armed(plan):
            spool.write_result_shard(task.task_id, [(0, RunRecord(scenario="s", params={}, seed=1))])
        stale = time.time() - 60.0
        os.utime(claimed.claimed_path, (stale, stale))
        assert spool.reclaim_expired() == [task.task_id]
        assert spool.pending_task_ids() == [task.task_id]
        assert spool.completed_task_ids() == []

    def test_lease_heartbeat_stall_directive(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        spool.initialise()
        _, cells = _demo_cells([1])
        (task,) = shard_cells(cells, "demo/random_walk", task_size=1)
        spool.publish_task(task)
        claimed = spool.claim_next()
        stale = time.time() - 30.0
        os.utime(claimed.claimed_path, (stale, stale))
        plan = FaultPlan([FaultRule(point="spool.lease_heartbeat", kind="stall", times=None)])
        with armed(plan):
            spool.heartbeat(claimed)
        assert claimed.claimed_path.stat().st_mtime == pytest.approx(stale)
        spool.heartbeat(claimed)  # disarmed: renewal lands
        assert claimed.claimed_path.stat().st_mtime > stale + 1.0


# --------------------------------------------------------------------------
# Heartbeat files / event-log degradation
# --------------------------------------------------------------------------


class TestObservabilityDegradation:
    def test_torn_worker_heartbeat_is_skipped_and_healed(self, tmp_path):
        """Worker heartbeats are written atomically; the injected torn
        write simulates the pre-atomic failure mode and proves readers
        tolerate a partial file until the next stamp replaces it."""
        spool = Spool(tmp_path / "spool")
        spool.initialise()
        plan = FaultPlan([FaultRule(point="spool.worker_heartbeat", kind="torn_write")])
        payload = {"state": "running", "tasks_completed": 3}
        with armed(plan):
            assert spool.write_worker_heartbeat("w1", payload)
        torn = (spool.workers_dir / "w1.json").read_text()
        with pytest.raises(ValueError):
            json.loads(torn)  # genuinely torn on disk
        assert spool.worker_heartbeats() == {}  # reader skips it
        assert spool.write_worker_heartbeat("w1", payload)  # atomic heal
        assert spool.worker_heartbeats()["w1"]["tasks_completed"] == 3

    def test_event_log_write_failures_are_counted_drops(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl", source="w1")
        plan = FaultPlan([FaultRule(point="events.emit", kind="io_error", times=None)])
        with armed(plan):
            assert log.emit("worker_idle") is None
            assert log.emit("worker_idle") is None
        assert log.dropped == 2
        assert log.emit("worker_idle") is not None  # disarmed: log recovers
        assert len(read_events(log.path)) == 1

    def test_heartbeat_payload_carries_drop_count_only_when_nonzero(self):
        from repro.distributed import WorkerStats

        stats = WorkerStats(worker_id="w1")
        assert "events_dropped" not in stats.heartbeat_payload("idle")
        assert stats.heartbeat_payload("idle", events_dropped=2)["events_dropped"] == 2

    def test_status_cli_surfaces_dropped_events(self, tmp_path, capsys):
        path = tmp_path / "progress.json"
        tracker = ProgressTracker(path, scenario="s", backend="spool")
        tracker.begin(total=1, reused=0)
        tracker.set_workers(
            {"w1": {"state": "running", "tasks_completed": 1, "events_dropped": 3}}
        )
        tracker.record_record(ok=True)
        tracker.finish(complete=True)
        assert cli_main(["status", str(path)]) == 0
        captured = capsys.readouterr()
        assert "3 dropped event(s)" in captured.out
        assert "3 event(s) dropped" in captured.err


# --------------------------------------------------------------------------
# Quarantine
# --------------------------------------------------------------------------


class TestQuarantine:
    def _spool_with_task(self, tmp_path, max_task_attempts=3):
        spool = Spool(tmp_path / "spool", max_task_attempts=max_task_attempts)
        spool.initialise()
        _, cells = _demo_cells([1])
        (task,) = shard_cells(cells, "demo/random_walk", task_size=1)
        spool.publish_task(task)
        return spool, task

    def test_repeated_requeues_quarantine_the_task(self, tmp_path):
        spool, task = self._spool_with_task(tmp_path, max_task_attempts=3)
        outcomes = []
        for _ in range(3):
            claimed = spool.claim_next()
            assert claimed is not None
            outcomes.append(spool.requeue(claimed))
        assert outcomes == ["requeued", "requeued", "quarantined"]
        assert spool.quarantined_task_ids() == [task.task_id]
        assert spool.pending_task_ids() == []
        assert spool.read_quarantined_task(task.task_id) == task

    def test_quarantine_retry_resets_the_attempt_ledger(self, tmp_path):
        spool, task = self._spool_with_task(tmp_path, max_task_attempts=2)
        for _ in range(2):
            spool.requeue(spool.claim_next())
        assert spool.quarantined_task_ids() == [task.task_id]
        assert spool.quarantine_retry(task.task_id)
        assert spool.pending_task_ids() == [task.task_id]
        assert spool.reclaim_count(task.task_id) == 0
        # The reset counter means the task gets its full budget again.
        assert spool.requeue(spool.claim_next()) == "requeued"

    def test_workers_adopt_published_max_task_attempts(self, tmp_path):
        coordinator_spool = Spool(tmp_path / "spool", max_task_attempts=7)
        coordinator_spool.initialise()
        coordinator_spool.write_campaign_metadata({})
        worker_spool = Spool(tmp_path / "spool")  # default 3 view
        worker_spool.refresh_lease_timeout()
        assert worker_spool.max_task_attempts == 7

    def test_worker_quarantines_task_with_failing_shard_writes(self, tmp_path):
        """Persistent spool I/O failure on one worker must retire the task
        through the quarantine ledger instead of looping forever."""
        spool, task = self._spool_with_task(tmp_path, max_task_attempts=3)
        plan = FaultPlan(
            [FaultRule(point="spool.write_shard", kind="io_error", times=None)]
        )
        with armed(plan):
            stats = run_worker(spool.root, idle_timeout=0.1, poll_interval=0.01)
        assert stats.tasks_completed == 0
        assert spool.quarantined_task_ids() == [task.task_id]
        kinds = [event["kind"] for event in read_events(spool.events_path)]
        assert "task_quarantined" in kinds
        assert set(kinds) <= EVENT_KINDS

    def test_coordinator_absorbs_quarantined_task_as_failed_records(self, tmp_path):
        """A poison task must not stall the campaign: its cells become
        failed records carrying the attempt count and TaskQuarantined."""
        spool_root = tmp_path / "spool"
        backend = SpoolBackend(
            spool_root, workers=0, poll_interval=0.01, timeout=60.0, max_task_attempts=2
        )
        saboteur_spool = Spool(spool_root, max_task_attempts=2)
        stop = threading.Event()

        def sabotage():
            deadline = time.time() + 30.0
            while not stop.is_set() and time.time() < deadline:
                claimed = saboteur_spool.claim_next()
                if claimed is not None and saboteur_spool.requeue(claimed) == "quarantined":
                    return
                time.sleep(0.01)

        thread = threading.Thread(target=sabotage)
        thread.start()
        try:
            result = ParallelCampaignRunner(backend=backend).run(
                "demo/random_walk", seeds=[1]
            )
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert result.failures == 1
        (record,) = result.records
        assert record.error_class == "TaskQuarantined"
        assert record.attempts == 2
        assert "quarantined after 2 failed execution attempt(s)" in record.error
        kinds = [event["kind"] for event in read_events(Spool(spool_root).events_path)]
        assert "task_quarantined" in kinds

    def test_quarantine_cli_list_and_retry(self, tmp_path, capsys):
        spool, task = self._spool_with_task(tmp_path, max_task_attempts=2)
        for _ in range(2):
            spool.requeue(spool.claim_next())
        spool_arg = str(spool.root)
        assert cli_main(["quarantine", "list", spool_arg]) == 0
        out = capsys.readouterr().out
        assert task.task_id in out
        assert "demo/random_walk" in out
        assert cli_main(["quarantine", "retry", spool_arg]) == 0
        assert task.task_id in capsys.readouterr().out
        assert spool.quarantined_task_ids() == []
        assert spool.pending_task_ids() == [task.task_id]
        assert cli_main(["quarantine", "list", spool_arg]) == 0
        assert "empty" in capsys.readouterr().out
        assert cli_main(["quarantine", "retry", spool_arg, "task-99999"]) == 2
        assert "not quarantined" in capsys.readouterr().err


# --------------------------------------------------------------------------
# Cache resilience
# --------------------------------------------------------------------------


class TestCacheResilience:
    def test_corrupt_entry_repaired_on_read(self, tmp_path):
        cache = CacheIndex(tmp_path / "cache")
        key = "a" * 64
        record = RunRecord(scenario="s", params={}, seed=1, metrics={"m": 1.0})
        cache.put(key, record)
        cache.path_for(key).write_text("{torn")
        assert cache.get(key) is None
        assert cache.repairs == 1
        assert not cache.path_for(key).exists()  # removed so a re-put heals
        assert cache.put(key, record)
        assert cache.get(key) == record
        assert cache.session_stats()["repairs"] == 1

    def test_injected_corrupt_put_is_repaired_by_next_reader(self, tmp_path):
        cache = CacheIndex(tmp_path / "cache")
        key = "b" * 64
        record = RunRecord(scenario="s", params={}, seed=1, metrics={"m": 1.0})
        plan = FaultPlan([FaultRule(point="cache.put", kind="corrupt")])
        with armed(plan):
            assert cache.put(key, record)
        reader = CacheIndex(tmp_path / "cache")
        assert reader.get(key) is None
        assert reader.repairs == 1
        assert not reader.path_for(key).exists()

    def test_unreachable_cache_degrades_with_one_warning(self, tmp_path, caplog):
        cache = CacheIndex(tmp_path / "cache")
        key = "c" * 64
        record = RunRecord(scenario="s", params={}, seed=1, metrics={"m": 1.0})
        plan = FaultPlan([FaultRule(point="cache.get", kind="io_error", times=None)])
        with caplog.at_level("WARNING", logger="repro.distributed.cache"):
            with armed(plan):
                assert cache.get(key) is None
                assert cache.get(key) is None
        assert cache.degraded
        warnings = [r for r in caplog.records if "continuing uncached" in r.message]
        assert len(warnings) == 1  # warn once, not per lookup
        # Every subsequent operation is a silent no-op.
        assert not cache.put(key, record)
        assert cache.get(key) is None
        assert cache.flush_stats() is False

    def test_degraded_cache_does_not_fail_the_campaign(self, tmp_path):
        cache = CacheIndex(tmp_path / "cache")
        plan = FaultPlan([FaultRule(point="cache.put", kind="io_error", times=None)])
        with armed(plan):
            result = ParallelCampaignRunner(cache=cache).run(
                "demo/random_walk", seeds=[1, 2]
            )
        assert result.failures == 0
        assert cache.degraded
        assert len(cache) == 0  # nothing cached, nothing crashed

    def test_lifetime_stats_accumulate_repairs(self, tmp_path):
        cache = CacheIndex(tmp_path / "cache")
        key = "d" * 64
        cache.put(key, RunRecord(scenario="s", params={}, seed=1, metrics={"m": 1.0}))
        cache.path_for(key).write_text("{torn")
        cache.get(key)
        assert cache.flush_stats()
        assert CacheIndex(tmp_path / "cache").lifetime_stats()["repairs"] == 1


# --------------------------------------------------------------------------
# Chaos campaigns (the tentpole acceptance)
# --------------------------------------------------------------------------


def _subprocess_env():
    """Environment for CLI subprocesses: repro importable, no armed plan."""
    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    if package_root not in (existing or "").split(os.pathsep):
        env["PYTHONPATH"] = package_root + (os.pathsep + existing if existing else "")
    env.pop(PLAN_ENV, None)
    env.pop(GENERATION_ENV, None)
    return env


class TestChaosCampaigns:
    def test_chaos_campaign_converges_byte_identical_to_serial(self, tmp_path, monkeypatch):
        """Worker crashes + torn shards + corrupt cache objects: the spool
        campaign must converge to the fault-free jobs=1 store, byte for
        byte, with an empty quarantine."""
        serial_path = tmp_path / "serial.jsonl"
        ParallelCampaignRunner(jobs=1, store=ResultStore(serial_path)).run(
            "demo/random_walk", seeds=range(1, 7)
        )
        plan = FaultPlan(
            [
                # Each first-wave worker dies on its 3rd cell (SIGKILL-style).
                FaultRule(point="worker.cell", kind="crash", at=3, max_generation=0),
                # ... and tears its 2nd shard write before that.
                FaultRule(point="spool.write_shard", kind="torn_write", at=2, max_generation=0),
                # ... and garbles its first cache publish.
                FaultRule(point="cache.put", kind="corrupt", at=1, max_generation=0),
            ]
        )
        plan_path = plan.save(tmp_path / "plan.json")
        # Spawned workers arm the plan from the environment at import; this
        # test process stays disarmed (faults was imported without it).
        monkeypatch.setenv(PLAN_ENV, str(plan_path))
        backend = SpoolBackend(
            tmp_path / "spool",
            workers=2,
            task_size=1,
            # Generous lease: on a loaded machine a short lease can expire
            # under a live worker, and 3 spurious reclaims would quarantine.
            lease_timeout=5.0,
            poll_interval=0.02,
            timeout=300.0,
            max_respawns=4,
            worker_cache_root=tmp_path / "cache",
        )
        chaos_path = tmp_path / "chaos.jsonl"
        result = ParallelCampaignRunner(store=ResultStore(chaos_path), backend=backend).run(
            "demo/random_walk", seeds=range(1, 7)
        )
        assert result.failures == 0
        assert serial_path.read_bytes() == chaos_path.read_bytes()
        spool = Spool(tmp_path / "spool")
        assert spool.quarantined_task_ids() == []
        kinds = {event["kind"] for event in read_events(spool.events_path)}
        assert kinds <= EVENT_KINDS
        # The faults actually bit: at least one first-wave worker died (6
        # tasks over 2 workers guarantees a 3rd claim) and, since the crash
        # rule fires only after the torn 2nd write, a torn shard landed too.
        assert "worker_dead" in kinds
        assert "worker_respawn" in kinds
        assert "shard_torn" in kinds

    def test_coordinator_crash_and_restart_converges(self, tmp_path):
        """Kill the coordinator mid-campaign (os._exit via injected crash),
        restart it on the same spool: it resumes instead of purging, and the
        merged store is byte-identical to the fault-free serial run."""
        # Poll 1 runs before the worker has finished spawning, so a crash at
        # poll 2 is guaranteed to fire before the campaign can complete.
        plan = FaultPlan([FaultRule(point="coordinator.poll", kind="crash", at=2)])
        plan_path = plan.save(tmp_path / "plan.json")
        spool_root = tmp_path / "spool"
        command = [
            sys.executable, "-m", "repro.experiments", "run", "demo/random_walk",
            "--seeds", "6", "--backend", "spool", "--spool", str(spool_root),
            "--workers", "1", "--task-size", "1", "--timeout", "120",
        ]
        env = _subprocess_env()
        # Redirect to files rather than pipes: the worker orphaned by the
        # coordinator's os._exit inherits stdio, and capture_output would
        # block on pipe EOF until that worker dies.
        first_log = (tmp_path / "first.log").open("w")
        second_log = tmp_path / "second.log"
        try:
            with first_log:
                first = subprocess.run(
                    command + ["--faults", str(plan_path)],
                    env=env, stdout=first_log, stderr=subprocess.STDOUT, timeout=300,
                )
            assert first.returncode == 137, (tmp_path / "first.log").read_text()
            with second_log.open("w") as handle:
                second = subprocess.run(
                    command, env=env, stdout=handle, stderr=subprocess.STDOUT, timeout=300
                )
            assert second.returncode == 0, second_log.read_text()
        finally:
            # Release any worker orphaned by the injected coordinator crash.
            spool_root.mkdir(parents=True, exist_ok=True)
            Spool(spool_root).mark_complete()
        kinds = [event["kind"] for event in read_events(Spool(spool_root).events_path)]
        assert "campaign_resumed" in kinds
        merged_path = tmp_path / "merged.jsonl"
        merge_spool_results(Spool(spool_root), ResultStore(merged_path))
        serial_path = tmp_path / "serial.jsonl"
        ParallelCampaignRunner(jobs=1, store=ResultStore(serial_path)).run(
            "demo/random_walk", seeds=range(1, 7)
        )
        assert serial_path.read_bytes() == merged_path.read_bytes()

    def test_resume_is_rejected_for_a_different_campaign(self, tmp_path):
        """A spool holding a *different* campaign is purged, not resumed."""
        backend = SpoolBackend(tmp_path / "spool", workers=1, timeout=120.0)
        ParallelCampaignRunner(backend=backend).run("demo/random_walk", seeds=[1, 2])
        result = ParallelCampaignRunner(backend=backend).run(
            "demo/random_walk", seeds=[3, 4]
        )
        assert result.failures == 0
        assert [record.seed for record in result.records] == [3, 4]
        kinds = [event["kind"] for event in read_events(Spool(tmp_path / "spool").events_path)]
        assert "campaign_resumed" not in kinds  # initialise() purged the log


# --------------------------------------------------------------------------
# CLI surface
# --------------------------------------------------------------------------


class TestResilienceCli:
    def test_run_rejects_bad_retries_and_missing_plan(self, tmp_path, capsys):
        assert cli_main(["run", "demo/random_walk", "--seeds", "1", "--retries", "0"]) == 2
        assert "--retries" in capsys.readouterr().err
        rc = cli_main(
            ["run", "demo/random_walk", "--seeds", "1",
             "--faults", str(tmp_path / "missing.json")]
        )
        assert rc == 2
        assert "could not load fault plan" in capsys.readouterr().err

    def test_max_respawns_requires_spool_backend(self, capsys):
        rc = cli_main(["run", "demo/random_walk", "--seeds", "1", "--max-respawns", "2"])
        assert rc == 2
        assert "--max-respawns" in capsys.readouterr().err

    def test_run_with_faults_arms_and_retries_transients(self, tmp_path, capsys):
        """An armed io_error plan on run.cell makes the first attempt of the
        first cell fail; with --retries 3 the campaign still succeeds."""
        plan = FaultPlan([FaultRule(point="run.cell", kind="io_error", at=1, times=2)])
        plan_path = plan.save(tmp_path / "plan.json")
        from repro.resilience import disarm

        try:
            rc = cli_main(
                ["run", "demo/random_walk", "--seeds", "2",
                 "--faults", str(plan_path), "--retries", "3"]
            )
        finally:
            disarm()  # _arm_fault_plan arms process-wide; clean up for peers
        assert rc == 0
        assert "0 failed" in capsys.readouterr().out

    def test_report_shows_attempts_and_error_class_for_failures(self, tmp_path, capsys):
        store_path = tmp_path / "store.jsonl"
        store = ResultStore(store_path)
        store.add_many(
            [
                RunRecord(scenario="demo/random_walk", params={"steps": 100}, seed=1,
                          metrics={"final_position": 1.0}),
                RunRecord(scenario="demo/random_walk", params={"steps": 100}, seed=2,
                          status="failed",
                          error="task task-00001 quarantined after 3 failed execution attempt(s)",
                          error_class="TaskQuarantined", attempts=3),
            ]
        )
        assert cli_main(["report", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "failed runs" in out
        assert "TaskQuarantined" in out
        assert "attempts" in out
