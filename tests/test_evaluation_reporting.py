"""Unit tests for the plain-text reporting helpers (satellite of the
experiments subsystem: the CLI and the benchmark tables both rely on them)."""

import math

from repro.evaluation.reporting import format_series, format_table


class TestFormatTable:
    def test_columns_are_aligned(self):
        table = format_table([{"name": "a", "value": 1}, {"name": "long-name", "value": 22}])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len({len(line) for line in lines}) == 1  # every line is padded to the same width
        header = lines[0]
        assert header.index("name") < header.index("value")

    def test_column_order_taken_from_first_row(self):
        table = format_table([{"b": 1, "a": 2}, {"a": 3, "b": 4}])
        header = table.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_missing_keys_render_empty(self):
        table = format_table([{"a": 1, "b": 2}, {"a": 3}])
        last = table.splitlines()[-1]
        assert "3" in last
        assert last.split("|")[1].strip() == ""

    def test_extra_keys_in_later_rows_are_ignored(self):
        table = format_table([{"a": 1}, {"a": 2, "zzz": 9}])
        assert "zzz" not in table

    def test_nan_and_inf_cells(self):
        table = format_table([{"x": float("nan"), "y": float("inf"), "z": float("-inf")}])
        row = table.splitlines()[-1]
        assert "nan" in row
        assert "inf" in row
        assert "-inf" in row

    def test_float_formatting_strips_trailing_zeros(self):
        table = format_table([{"x": 1.5, "y": 2.0, "z": 0.12345}])
        row = table.splitlines()[-1]
        cells = [cell.strip() for cell in row.split("|")]
        assert cells == ["1.5", "2", "0.123"]

    def test_dict_cells_are_flattened(self):
        table = format_table([{"residency": {"a": 0.25, "b": 0.75}}])
        assert "a:0.25" in table and "b:0.75" in table

    def test_empty_rows_with_and_without_title(self):
        assert format_table([]) == "(no rows)"
        assert format_table([], title="T") == "T\n(no rows)"

    def test_title_is_first_line(self):
        assert format_table([{"a": 1}], title="My Table").splitlines()[0] == "My Table"


class TestFormatSeries:
    def test_series_renders_pairs_with_labels(self):
        series = format_series("fig", [1, 2, 3], [0.1, 0.2, 0.3], x_label="n", y_label="v")
        lines = series.splitlines()
        assert lines[0] == "fig"
        assert "n" in lines[1] and "v" in lines[1]
        assert len(lines) == 2 + 1 + 3  # title, header, rule, three rows

    def test_series_truncates_to_shortest_input(self):
        series = format_series("s", [1, 2, 3], [5.0])
        assert len(series.splitlines()) == 2 + 1 + 1

    def test_series_with_nan_values(self):
        series = format_series("s", [1], [math.nan])
        assert "nan" in series
