"""Tests for the grid / corridor / mixed-airspace ROADMAP workloads."""

import pytest

from repro.experiments import ParallelCampaignRunner, ParameterGrid
from repro.experiments.registry import load_builtin_scenarios


@pytest.fixture(scope="module")
def registry():
    return load_builtin_scenarios()


class TestRegistration:
    def test_workloads_are_registered(self, registry):
        for name in (
            "urban_grid",
            "corridor",
            "corridor/green_wave",
            "corridor/unsynchronised",
            "mixed_airspace",
            "mixed_airspace/kernel",
            "mixed_airspace/no_kernel",
        ):
            assert name in registry

    def test_workloads_carry_the_workload_tag(self, registry):
        tagged = [spec.name for spec in registry.specs() if "workload" in spec.tags]
        assert {"urban_grid", "corridor", "mixed_airspace"} <= set(tagged)


class TestUrbanGrid:
    def _run(self, **params):
        from repro.usecases.acc import ArchitectureVariant
        from repro.usecases.urban_grid import UrbanGridConfig, UrbanGridScenario

        variant = params.pop("variant", "karyon")
        config = UrbanGridConfig(
            streets=2, followers=2, duration=25.0, seed=4,
            variant=ArchitectureVariant(variant), **params,
        )
        return UrbanGridScenario(config).run()

    def test_runs_and_reports_per_grid_metrics(self):
        results = self._run()
        assert results.streets == 2
        assert results.collisions == 0
        assert results.frames_sent > 0
        assert 0.0 < results.delivery_ratio <= 1.0
        assert results.los_residency  # kernels ran and accumulated residency
        row = results.as_row()
        assert row["streets"] == 2
        assert "throughput_veh_h" in row

    def test_same_seed_is_deterministic(self):
        import dataclasses

        assert dataclasses.asdict(self._run()) == dataclasses.asdict(self._run())

    def test_blackout_hurts_the_trusting_baseline(self):
        karyon = self._run(interference_bursts=((10.0, 8.0),), brake_start=12.0)
        trusting = self._run(
            variant="always_cooperative",
            interference_bursts=((10.0, 8.0),),
            brake_start=12.0,
        )
        assert karyon.collisions == 0
        assert (
            trusting.collisions + trusting.hazardous_states
            > karyon.collisions + karyon.hazardous_states
        )


class TestCorridor:
    def _run(self, **params):
        from repro.usecases.corridor import CorridorConfig, CorridorScenario

        config = CorridorConfig(
            intersections=2, arterial_vehicles=4, cross_vehicles=1,
            duration=90.0, seed=9, **params,
        )
        return CorridorScenario(config).run()

    def test_green_wave_beats_unsynchronised_lights(self):
        wave = self._run(green_wave=True)
        unsync = self._run(green_wave=False)
        assert wave.crossed > 0 and unsync.crossed > 0
        assert wave.conflicts == 0
        assert wave.mean_travel_time <= unsync.mean_travel_time
        assert wave.stops_per_vehicle <= unsync.stops_per_vehicle

    def test_failed_light_degrades_the_corridor(self):
        healthy = self._run()
        failed = self._run(failed_light=1, light_failure_time=15.0)
        assert failed.mean_travel_time > healthy.mean_travel_time

    def test_same_seed_is_deterministic(self):
        import dataclasses

        assert dataclasses.asdict(self._run()) == dataclasses.asdict(self._run())


class TestMixedAirspace:
    def _run(self, **params):
        from repro.usecases.mixed_airspace import MixedAirspaceConfig, MixedAirspaceScenario

        config = MixedAirspaceConfig(duration=150.0, seed=3, **params)
        return MixedAirspaceScenario(config).run()

    def test_adsb_really_traverses_the_radio_stack(self):
        results = self._run(ground_nodes=2)
        assert results.adsb_received > 0
        assert results.frames_sent > results.adsb_received  # CAM load shares the medium
        assert results.conflicts == 0

    def test_ground_load_erodes_the_collaborative_los(self):
        quiet = self._run(ground_nodes=0)
        loaded = self._run(ground_nodes=20, ground_rate_hz=40.0)
        assert quiet.los_share_collaborative > loaded.los_share_collaborative
        assert loaded.delivery_ratio < quiet.delivery_ratio

    def test_no_kernel_baseline_always_flies_tight(self):
        results = self._run(with_safety_kernel=False, ground_nodes=6)
        assert results.los_share_collaborative == 1.0


class TestCampaignIntegration:
    def test_corridor_sweepable_through_the_runner(self):
        runner = ParallelCampaignRunner()
        result = runner.run(
            "corridor",
            params={"duration": 60.0, "arterial_vehicles": 3, "cross_vehicles": 1},
            sweep=ParameterGrid(green_wave=(True, False)),
            seeds=[9],
        )
        assert result.run_count == 2
        assert result.failures == 0
        rows = result.grouped_rows(by=["green_wave"])
        assert {row["green_wave"] for row in rows} == {True, False}

    def test_urban_grid_runs_from_the_registry(self):
        runner = ParallelCampaignRunner()
        result = runner.run(
            "urban_grid",
            params={"duration": 20.0, "streets": 2, "followers": 2},
            seeds=[1],
        )
        assert result.failures == 0
        assert result.metric("collisions") == 0.0
