"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import PeriodicTask, SimulationError, Simulator


def test_initial_time_is_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run_until_fires_callback_at_right_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.5, lambda: fired.append(sim.now))
    sim.run_until(2.0)
    assert fired == [1.5]
    assert sim.now == 2.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run_until(5.0)
    assert order == ["a", "b", "c"]


def test_ties_broken_by_insertion_order():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append(1))
    sim.schedule(1.0, lambda: order.append(2))
    sim.schedule(1.0, lambda: order.append(3))
    sim.run_until(1.0)
    assert order == [1, 2, 3]


def test_priority_orders_simultaneous_events():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("low"), priority=5)
    sim.schedule(1.0, lambda: order.append("high"), priority=0)
    sim.run_until(1.0)
    assert order == ["high", "low"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.1, lambda: None)


def test_schedule_at_in_the_past_rejected():
    sim = Simulator()
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_run_until_backwards_rejected():
    sim = Simulator()
    sim.run_until(3.0)
    with pytest.raises(SimulationError):
        sim.run_until(2.0)


def test_timer_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    timer = sim.schedule(1.0, lambda: fired.append(1))
    timer.cancel()
    sim.run_until(2.0)
    assert fired == []
    assert timer.cancelled


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(0.5, lambda: fired.append(("inner", sim.now)))

    sim.schedule(1.0, outer)
    sim.run_until(2.0)
    assert fired == [("outer", 1.0), ("inner", 1.5)]


def test_run_until_does_not_execute_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(1))
    sim.run_until(4.0)
    assert fired == []
    sim.run_until(6.0)
    assert fired == [1]


def test_clock_advances_to_end_time_without_events():
    sim = Simulator()
    sim.run_until(10.0)
    assert sim.now == 10.0


def test_periodic_task_fires_every_period():
    sim = Simulator()
    times = []
    sim.periodic(1.0, lambda: times.append(sim.now))
    sim.run_until(5.0)
    assert times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]


def test_periodic_task_stop_halts_execution():
    sim = Simulator()
    times = []
    task = sim.periodic(1.0, lambda: times.append(sim.now))
    sim.run_until(2.0)
    task.stop()
    sim.run_until(5.0)
    assert times == [0.0, 1.0, 2.0]


def test_periodic_task_tracks_max_interval_with_jitter():
    sim = Simulator()
    jitters = iter([0.0, 0.3, 0.0, 0.0, 0.0, 0.0])
    task = PeriodicTask(sim, 1.0, lambda: None, jitter_fn=lambda: next(jitters, 0.0))
    task.start()
    sim.run_until(5.0)
    assert task.max_observed_interval == pytest.approx(1.3)


def test_periodic_rejects_nonpositive_period():
    sim = Simulator()
    with pytest.raises(SimulationError):
        PeriodicTask(sim, 0.0, lambda: None)


def test_stop_interrupts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, sim.stop)
    sim.schedule(2.0, lambda: fired.append(1))
    sim.run_until(10.0)
    assert fired == []
    assert sim.now == 1.0


def test_pending_events_counts_only_active():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    timer.cancel()
    assert sim.pending_events() == 1


def test_run_drains_queue():
    sim = Simulator()
    fired = []
    for delay in (1.0, 2.0, 3.0):
        sim.schedule(delay, lambda d=delay: fired.append(d))
    sim.run()
    assert fired == [1.0, 2.0, 3.0]
    assert sim.peek() is None


def test_timer_fired_tracks_execution():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    assert not timer.fired
    sim.run_until(0.5)
    assert not timer.fired
    sim.run_until(1.0)
    assert timer.fired


def test_timer_cancelled_after_firing_still_reports_fired():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    sim.run_until(2.0)
    assert timer.fired
    timer.cancel()  # no-op on an already-fired timer
    assert timer.fired
    assert not timer.cancelled


def test_timer_scheduled_now_not_fired_until_callback_ran():
    sim = Simulator()
    observed = []

    def first():
        # `late` is scheduled at the same instant but has not run yet.
        observed.append(late.fired)

    sim.schedule(1.0, first, priority=0)
    late = sim.schedule(1.0, lambda: None, priority=1)
    sim.run_until(1.0)
    assert observed == [False]
    assert late.fired


def test_pending_events_live_counter():
    sim = Simulator()
    timers = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert sim.pending_events() == 10
    timers[0].cancel()
    timers[5].cancel()
    assert sim.pending_events() == 8
    timers[5].cancel()  # double-cancel must not double-decrement
    assert sim.pending_events() == 8
    sim.run_until(3.0)  # executes timers 2 and 3 (timer 1 was cancelled)
    assert sim.pending_events() == 6
    sim.run()
    assert sim.pending_events() == 0


def test_cancelled_event_compaction_preserves_schedule():
    sim = Simulator()
    fired = []
    keep = []
    for i in range(200):
        timer = sim.schedule(1.0 + i * 0.01, lambda i=i: fired.append(i))
        if i % 2:
            keep.append(i)
        else:
            timer.cancel()  # enough cancellations to trigger compaction
    assert sim.pending_events() == len(keep)
    sim.run_until(10.0)
    assert fired == keep


def test_schedule_fast_interleaves_with_schedule_in_insertion_order():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule_fast(1.0, lambda: order.append("b"))
    sim.schedule_at_fast(1.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("d"))
    sim.schedule_fast(0.5, lambda: order.append("early"), priority=5)
    sim.run_until(1.0)
    assert order == ["early", "a", "b", "c", "d"]
    assert sim.events_processed == 5
    assert sim.pending_events() == 0


def test_peek_skips_cancelled_events():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek() == 2.0
