"""Integration tests: the four use cases and the evaluation toolkit.

These are end-to-end runs of the scenarios the benchmarks use, with shorter
durations so the suite stays fast.  They assert the qualitative shapes the
paper's argument implies (safety with the kernel, hazards without it,
fallback behaviour under failure).
"""

import pytest

from repro.core.asil import ASIL
from repro.core.hazard import SafetyGoal
from repro.evaluation.campaign import FaultCampaign
from repro.evaluation.iso26262 import SafetyCase, Verdict
from repro.evaluation.metrics import PerformanceMetrics, SafetyMetrics, summarize
from repro.evaluation.reporting import format_series, format_table
from repro.usecases.acc import ArchitectureVariant, PlatoonConfig, PlatoonScenario
from repro.usecases.avionics import AvionicsConfig, AvionicsScenario, AvionicsUseCase
from repro.usecases.intersection import (
    IntersectionConfig,
    IntersectionMode,
    IntersectionScenario,
)
from repro.usecases.lane_change import LaneChangeConfig, LaneChangeScenario


def run_platoon(variant, duration=45.0, followers=3, bursts=((18.0, 8.0),), seed=1):
    config = PlatoonConfig(
        followers=followers,
        duration=duration,
        variant=variant,
        interference_bursts=bursts,
        seed=seed,
    )
    return PlatoonScenario(config).run()


class TestPlatoonUseCase:
    def test_karyon_platoon_is_safe_under_communication_blackout(self):
        result = run_platoon(ArchitectureVariant.KARYON)
        assert result.collisions == 0
        assert result.hazardous_states == 0
        assert result.downgrades >= 1  # the kernel reacted to the blackout
        assert result.max_kernel_cycle_interval <= 0.1 + 1e-6

    def test_always_cooperative_platoon_is_unsafe_under_blackout(self):
        result = run_platoon(ArchitectureVariant.ALWAYS_COOPERATIVE)
        assert result.collisions > 0 or result.hazardous_states > 0

    def test_never_cooperative_is_safe_but_slower(self):
        conservative = run_platoon(ArchitectureVariant.NEVER_COOPERATIVE)
        karyon = run_platoon(ArchitectureVariant.KARYON)
        assert conservative.collisions == 0
        assert conservative.mean_time_gap > karyon.mean_time_gap
        assert karyon.throughput > conservative.throughput

    def test_kernel_downgrades_resolve_after_recovery(self):
        result = run_platoon(ArchitectureVariant.KARYON, duration=50.0)
        # After the blackout ends the platoon returns to the cooperative LoS.
        assert result.los_residency.get("cooperative", 0.0) > 0.5

    def test_sensor_fault_injection_degrades_los(self):
        from repro.sensors.faults import StuckAtFault

        config = PlatoonConfig(
            followers=2,
            duration=30.0,
            variant=ArchitectureVariant.KARYON,
            sensor_faults=((1, StuckAtFault(), 10.0, 20.0),),
        )
        result = PlatoonScenario(config).run()
        assert result.collisions == 0
        assert result.los_residency.get("conservative", 0.0) > 0.0 or result.downgrades >= 1


class TestIntersectionUseCase:
    def test_healthy_light_is_conflict_free(self):
        result = IntersectionScenario(
            IntersectionConfig(mode=IntersectionMode.INFRASTRUCTURE,
                               vehicles_per_approach=3, duration=90.0)
        ).run()
        assert result.conflicts == 0
        assert result.crossed == 6

    def test_vtl_fallback_restores_throughput_after_light_failure(self):
        result = IntersectionScenario(
            IntersectionConfig(mode=IntersectionMode.VTL_FALLBACK,
                               vehicles_per_approach=3, duration=120.0,
                               light_failure_time=15.0)
        ).run()
        assert result.conflicts == 0
        assert result.crossed == 6
        assert result.vtl_activations > 0

    def test_uncoordinated_fallback_is_worse(self):
        vtl = IntersectionScenario(
            IntersectionConfig(mode=IntersectionMode.VTL_FALLBACK,
                               vehicles_per_approach=3, duration=120.0,
                               light_failure_time=15.0)
        ).run()
        uncoordinated = IntersectionScenario(
            IntersectionConfig(mode=IntersectionMode.UNCOORDINATED,
                               vehicles_per_approach=3, duration=120.0,
                               light_failure_time=15.0)
        ).run()
        assert (
            uncoordinated.conflicts > vtl.conflicts
            or uncoordinated.crossed < vtl.crossed
            or uncoordinated.mean_delay > vtl.mean_delay
        )


class TestLaneChangeUseCase:
    def test_coordinated_changes_never_overlap(self):
        result = LaneChangeScenario(LaneChangeConfig(coordinated=True, duration=45.0)).run()
        assert result.simultaneous_violations == 0
        assert result.completed_changes >= 2

    def test_uncoordinated_changes_overlap(self):
        result = LaneChangeScenario(LaneChangeConfig(coordinated=False, duration=45.0)).run()
        assert result.simultaneous_violations > 0


class TestAvionicsUseCase:
    @pytest.mark.parametrize("use_case", list(AvionicsUseCase))
    def test_kernel_keeps_separation_for_all_use_cases(self, use_case):
        result = AvionicsScenario(
            AvionicsConfig(use_case=use_case, with_safety_kernel=True,
                           intruder_collaborative=True, duration=420.0)
        ).run()
        assert result.conflicts == 0
        assert result.mission_completed

    def test_non_collaborative_traffic_forces_conservative_los(self):
        result = AvionicsScenario(
            AvionicsConfig(use_case=AvionicsUseCase.IN_TRAIL, with_safety_kernel=True,
                           intruder_collaborative=False, duration=300.0)
        ).run()
        assert result.los_share_collaborative < 0.1

    def test_kernel_margin_larger_with_uncertain_traffic(self):
        with_kernel = AvionicsScenario(
            AvionicsConfig(use_case=AvionicsUseCase.IN_TRAIL, with_safety_kernel=True,
                           intruder_collaborative=False, duration=300.0)
        ).run()
        without_kernel = AvionicsScenario(
            AvionicsConfig(use_case=AvionicsUseCase.IN_TRAIL, with_safety_kernel=False,
                           intruder_collaborative=False, duration=300.0)
        ).run()
        assert with_kernel.min_horizontal_separation > without_kernel.min_horizontal_separation


class TestEvaluationToolkit:
    def test_summarize_statistics(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["min"] == 1.0 and stats["max"] == 4.0
        assert summarize([])["count"] == 0

    def test_safety_metrics_flag(self):
        assert SafetyMetrics().is_safe
        assert not SafetyMetrics(collisions=1).is_safe

    def test_campaign_runs_multiple_seeds(self):
        campaign = FaultCampaign(
            "platoon-karyon",
            factory=lambda seed: run_platoon(ArchitectureVariant.KARYON, duration=20.0,
                                             followers=2, bursts=(), seed=seed),
            metric_fields=["collisions", "mean_speed"],
            seeds=[1, 2],
        )
        summary = campaign.run()
        assert summary.run_count == 2
        assert summary.metric("collisions", "max") == 0.0
        assert summary.metric("mean_speed", "mean") > 0.0

    def test_campaign_survives_a_raising_factory(self):
        # Regression: a factory that raises used to abort the whole campaign.
        def factory(seed):
            if seed == 2:
                raise RuntimeError("injected factory crash")
            return run_platoon(ArchitectureVariant.KARYON, duration=15.0,
                               followers=2, bursts=(), seed=seed)

        campaign = FaultCampaign(
            "platoon-with-crash",
            factory=factory,
            metric_fields=["collisions", "mean_speed"],
            seeds=[1, 2, 3],
        )
        summary = campaign.run()
        assert summary.run_count == 3
        assert summary.failures == 1
        failed = [run for run in summary.runs if not run.ok]
        assert len(failed) == 1
        assert failed[0].seed == 2
        assert "injected factory crash" in failed[0].error
        assert failed[0].result is None
        # Aggregates still cover the two successful runs.
        assert summary.aggregates["mean_speed"]["count"] == 2
        assert summary.metric("collisions", "max") == 0.0

    def test_safety_case_verdicts(self):
        case = SafetyCase("acc")
        goal_d = SafetyGoal("SG1", "no collisions", ASIL.D)
        goal_qm = SafetyGoal("SG2", "comfort", ASIL.QM)
        case.assess(goal_d, observed_violations=0, exposure_hours=1.0)
        case.assess(goal_qm, observed_violations=3, exposure_hours=1.0)
        assert case.overall_verdict() is Verdict.PASS
        case.assess(goal_d, observed_violations=1, exposure_hours=1.0)
        assert case.overall_verdict() is Verdict.FAIL
        assert case.failed_goals()
        assert case.as_rows()

    def test_empty_safety_case_not_assessed(self):
        assert SafetyCase("x").overall_verdict() is Verdict.NOT_ASSESSED

    def test_format_table_and_series(self):
        table = format_table([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}], title="T")
        assert "T" in table and "a" in table and "x" in table
        series = format_series("fig", [1, 2], [0.1, 0.2], x_label="n", y_label="v")
        assert "fig" in series and "0.1" in series
        assert format_table([]) == "(no rows)"
