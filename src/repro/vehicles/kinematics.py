"""Longitudinal kinematics shared by road vehicles and (per-axis) aircraft."""

from __future__ import annotations

from dataclasses import dataclass


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into ``[low, high]``."""
    if low > high:
        raise ValueError(f"invalid clamp bounds: [{low}, {high}]")
    return max(low, min(high, value))


@dataclass
class LongitudinalState:
    """Position / speed / acceleration along a path, with physical limits."""

    position: float = 0.0
    speed: float = 0.0
    acceleration: float = 0.0
    max_speed: float = 45.0
    min_acceleration: float = -8.0
    max_acceleration: float = 3.0

    def apply(self, commanded_acceleration: float) -> float:
        """Set the acceleration, clipped to the actuator limits."""
        self.acceleration = clamp(
            commanded_acceleration, self.min_acceleration, self.max_acceleration
        )
        return self.acceleration

    def step(self, dt: float) -> None:
        """Integrate one time step (semi-implicit Euler, speed clipped to [0, max])."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.speed = clamp(self.speed + self.acceleration * dt, 0.0, self.max_speed)
        self.position += self.speed * dt

    def stopping_distance(self, reaction_time: float = 0.0, deceleration: float = None) -> float:
        """Distance needed to stop from the current speed.

        ``deceleration`` defaults to the maximum braking capability.
        """
        deceleration = abs(self.min_acceleration) if deceleration is None else abs(deceleration)
        if deceleration <= 0:
            raise ValueError("deceleration must be positive")
        return self.speed * reaction_time + (self.speed ** 2) / (2.0 * deceleration)

    def time_to_reach(self, distance: float) -> float:
        """Time to travel ``distance`` at the current speed (inf when stopped)."""
        if distance <= 0:
            return 0.0
        if self.speed <= 0:
            return float("inf")
        return distance / self.speed
