"""E9 — Ablations of the design choices DESIGN.md calls out.

(a) Safety-kernel cycle jitter: an unbounded (jittery/slow) kernel cycle
    weakens the bounded-reaction argument; measure hazardous states vs cycle
    period under a blackout + braking scenario.
(b) Lane-change agreement timeout sweep: shorter timeouts abort more
    proposals (lower manoeuvre throughput) but never violate exclusivity.

Both ablations run as sweep campaigns over registered scenarios.
"""

from repro.evaluation.reporting import format_table
from repro.experiments import ParameterGrid

from benchmarks.conftest import run_once, seeds_or

KERNEL_PERIODS = (0.05, 0.1, 0.5, 2.0)
AGREEMENT_TIMEOUTS = (0.2, 1.0, 3.0)


def test_benchmark_e9_ablations(benchmark, campaign_runner, campaign_seed_count):
    kernel_seeds = seeds_or((4,), campaign_seed_count)
    # The exclusivity shape check is calibrated on the lane-change scenario's
    # tuned seed; --seeds widens only the kernel-cycle ablation.
    timeout_seeds = (11,)

    def experiment():
        kernel_campaign = campaign_runner.run(
            "platoon",
            params={
                "followers": 3,
                "duration": 50.0,
                "variant": "karyon",
                "blackout_start": 18.0,
                "blackout_duration": 8.0,
            },
            sweep=ParameterGrid(kernel_period=KERNEL_PERIODS),
            seeds=kernel_seeds,
        )
        timeout_campaign = campaign_runner.run(
            "lane_change",
            params={"coordinated": True, "duration": 45.0},
            sweep=ParameterGrid(agreement_timeout=AGREEMENT_TIMEOUTS),
            seeds=timeout_seeds,
        )
        return kernel_campaign, timeout_campaign

    kernel_campaign, timeout_campaign = run_once(benchmark, experiment)
    assert kernel_campaign.failures == 0 and timeout_campaign.failures == 0
    kernel_rows = kernel_campaign.grouped_rows(
        by=("kernel_period",),
        metric_fields=(
            "collisions",
            "hazardous_states",
            "min_time_gap",
            "max_kernel_cycle_interval",
            "throughput",
        ),
    )
    timeout_rows = timeout_campaign.grouped_rows(
        by=("agreement_timeout",),
        metric_fields=(
            "completed_changes",
            "aborted_proposals",
            "simultaneous_violations",
            "mean_wait",
        ),
    )
    print()
    print(format_table(kernel_rows, title="E9a: safety-kernel cycle-period ablation (blackout + braking)"))
    print()
    print(format_table(timeout_rows, title="E9b: manoeuvre-agreement timeout ablation"))
    # A fast kernel cycle keeps the platoon hazard-free; a very slow cycle
    # reacts too late to the blackout and lets hazardous states through.
    fast = kernel_rows[0]
    slow = kernel_rows[-1]
    assert fast["collisions"] == 0 and fast["hazardous_states"] == 0
    assert slow["hazardous_states"] >= fast["hazardous_states"]
    # Exclusivity is never violated, whatever the timeout.
    assert all(row["simultaneous_violations"] == 0 for row in timeout_rows)
