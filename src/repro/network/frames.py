"""Frames exchanged on the simulated networks.

A frame is the MAC-level unit; the middleware maps events onto frames and the
cooperation protocols map their protocol messages onto frames as well.
Frames carry an optional delivery deadline so that deadline-miss rates (E3,
E5) can be computed at the receiver.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_FRAME_IDS = itertools.count(1)


class FrameKind(enum.Enum):
    """Coarse frame classes used for prioritisation and accounting."""

    DATA = "data"
    BEACON = "beacon"
    CONTROL = "control"
    SAFETY = "safety"


@dataclass
class Frame:
    """A MAC frame.

    Parameters
    ----------
    source:
        Sender node identifier.
    destination:
        Receiver node identifier, or ``None`` for broadcast.
    payload:
        Arbitrary payload (events, protocol messages, ...).
    kind:
        Frame class; safety frames are prioritised by R2T-MAC.
    priority:
        Smaller numbers are more urgent.
    deadline:
        Absolute simulated time by which delivery must complete, or ``None``.
    size_bits:
        Frame size, which determines air time.
    created_at:
        Simulated creation (enqueue) time, filled in by the MAC.
    """

    source: str
    destination: Optional[str] = None
    payload: Any = None
    kind: FrameKind = FrameKind.DATA
    priority: int = 10
    deadline: Optional[float] = None
    size_bits: int = 800
    created_at: float = 0.0
    channel: int = 0
    frame_id: int = field(default_factory=lambda: next(_FRAME_IDS))
    retransmission: int = 0

    @property
    def is_broadcast(self) -> bool:
        return self.destination is None

    def air_time(self, bitrate_bps: float) -> float:
        """Transmission duration at a given bitrate."""
        if bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        return self.size_bits / bitrate_bps

    def missed_deadline(self, delivery_time: float) -> bool:
        """Whether a delivery at ``delivery_time`` violates the deadline."""
        return self.deadline is not None and delivery_time > self.deadline

    def copy_for_retransmission(self) -> "Frame":
        """A retransmission copy sharing the frame identity and deadline."""
        return Frame(
            source=self.source,
            destination=self.destination,
            payload=self.payload,
            kind=self.kind,
            priority=self.priority,
            deadline=self.deadline,
            size_bits=self.size_bits,
            created_at=self.created_at,
            channel=self.channel,
            frame_id=self.frame_id,
            retransmission=self.retransmission + 1,
        )
