"""Safety and performance metric containers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence


@dataclass
class SafetyMetrics:
    """Safety-side outcomes of one run."""

    collisions: int = 0
    hazardous_states: int = 0
    rule_violations: int = 0
    min_time_gap: float = float("inf")
    min_separation: float = float("inf")

    @property
    def is_safe(self) -> bool:
        """No collision and no hazardous state observed."""
        return self.collisions == 0 and self.hazardous_states == 0


@dataclass
class PerformanceMetrics:
    """Performance-side outcomes of one run."""

    mean_speed: float = 0.0
    throughput: float = 0.0
    mean_headway: float = float("inf")
    mission_time: float = 0.0
    deliveries: int = 0
    deadline_miss_ratio: float = 0.0


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / min / max / p95 summary for a list of samples (NaN-free)."""
    clean = [v for v in values if v is not None and not math.isnan(v) and not math.isinf(v)]
    if not clean:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "p95": 0.0}
    ordered = sorted(clean)
    p95_index = min(len(ordered) - 1, int(round(0.95 * (len(ordered) - 1))))
    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "p95": ordered[p95_index],
    }
