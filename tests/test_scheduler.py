"""Elastic spool scheduling: adaptive shards, speculation, stealing,
cell deadlines, worker health, and spool fsck."""

import json
import random
import time

import pytest

from repro.distributed import (
    CellTimeout,
    Spool,
    SpoolBackend,
    WorkerHealth,
    cell_deadline,
    fsck_spool,
    merge_spool_results,
    run_worker,
)
from repro.distributed.coordinator import _campaign_id
from repro.distributed.scheduler import (
    ElapsedStats,
    ElasticScheduler,
    param_signature,
)
from repro.distributed.spool import SpoolTask, shard_cells
from repro.experiments import ParallelCampaignRunner, ResultStore
from repro.experiments.cli import main as cli_main
from repro.experiments.registry import load_builtin_scenarios
from repro.observability.events import EVENT_KINDS, read_events
from repro.observability.progress import read_progress
from repro.resilience import PLAN_ENV, FaultPlan, FaultRule, armed


def _demo_cells(seeds):
    spec = load_builtin_scenarios().get("demo/random_walk")
    run_specs = spec.runs(seeds=seeds)
    return spec, [(rs.params, rs.seed, rs.index) for rs in run_specs]


def _serial_store(tmp_path, seeds, name="serial.jsonl"):
    path = tmp_path / name
    ParallelCampaignRunner(jobs=1, store=ResultStore(path)).run(
        "demo/random_walk", seeds=seeds
    )
    return path


# --------------------------------------------------------------------------
# Cell deadlines
# --------------------------------------------------------------------------


class TestCellDeadline:
    def test_kills_a_runaway_cell_within_twice_the_deadline(self):
        deadline = 0.2
        started = time.monotonic()
        with pytest.raises(CellTimeout) as excinfo:
            with cell_deadline(deadline, task="task-00000", index=3):
                time.sleep(30.0)  # blocking C call; SIGALRM must interrupt it
        elapsed = time.monotonic() - started
        assert elapsed < 2.0 * deadline
        assert excinfo.value.index == 3
        assert excinfo.value.task == "task-00000"
        assert excinfo.value.seconds == deadline

    def test_is_a_base_exception_so_failed_record_capture_cannot_eat_it(self):
        # execute_run turns `Exception` into failed in-shard records; a
        # deadline kill must instead abort the task with no shard at all.
        assert issubclass(CellTimeout, BaseException)
        assert not issubclass(CellTimeout, Exception)

    def test_none_or_nonpositive_deadline_is_a_noop(self):
        with cell_deadline(None):
            pass
        with cell_deadline(0.0):
            pass

    def test_previous_sigalrm_handler_is_restored(self):
        import signal

        previous = signal.getsignal(signal.SIGALRM)
        with cell_deadline(5.0, task="t", index=0):
            assert signal.getsignal(signal.SIGALRM) is not previous
        assert signal.getsignal(signal.SIGALRM) is previous

    def test_stall_directive_disables_the_watchdog(self):
        plan = FaultPlan([FaultRule(point="worker.deadline", kind="stall")])
        with armed(plan):
            with cell_deadline(0.05, task="t", index=0):
                time.sleep(0.15)  # would have been killed without the stall


# --------------------------------------------------------------------------
# Adaptive shard sizing
# --------------------------------------------------------------------------


class TestElapsedStats:
    def test_shard_size_scales_inverse_to_cell_cost(self):
        stats = ElapsedStats()
        stats.add("cheap", cells=1, elapsed_s=0.01)
        stats.add("dear", cells=1, elapsed_s=1.0)
        assert stats.shard_size("cheap", target_task_s=2.0, max_cells=32) == 32
        assert stats.shard_size("dear", target_task_s=2.0, max_cells=32) == 2

    def test_no_history_defaults_to_single_cell_shards(self):
        assert ElapsedStats().shard_size("anything") == 1

    def test_unprobed_signature_falls_back_to_global_median(self):
        stats = ElapsedStats()
        stats.add("seen", cells=2, elapsed_s=0.2)
        assert stats.median_cell_s("never-seen") == pytest.approx(0.1)

    def test_param_signature_ignores_nothing_but_is_canonical(self):
        assert param_signature({"b": 1, "a": 2}) == param_signature({"a": 2, "b": 1})
        assert param_signature({"a": 1}) != param_signature({"a": 2})


# --------------------------------------------------------------------------
# Worker health
# --------------------------------------------------------------------------


class TestWorkerHealth:
    def test_fresh_worker_is_healthy_and_unbenched(self):
        health = WorkerHealth()
        assert health.score() == 1.0
        assert not health.benched()

    def test_repeated_timeouts_bench_the_worker(self):
        health = WorkerHealth(window=8, bench_below=0.5, min_events=4)
        for _ in range(4):
            health.record_timeout()
        assert health.benched()
        assert health.heartbeat_fields() == {"health": 0.0, "benched": True}

    def test_successes_rehabilitate_a_benched_worker(self):
        health = WorkerHealth(window=4, bench_below=0.5, min_events=4)
        for _ in range(4):
            health.record_io_failure()
        assert health.benched()
        for _ in range(4):
            health.record_success()
        assert not health.benched()
        assert health.score() == 1.0

    def test_idle_jitter_is_seeded_per_worker_id(self):
        # The thundering-herd fix: decorrelated but deterministic polling.
        first = [random.Random("worker-1").random() for _ in range(3)]
        again = [random.Random("worker-1").random() for _ in range(3)]
        other = [random.Random("worker-2").random() for _ in range(3)]
        assert first == again
        assert first != other


# --------------------------------------------------------------------------
# Work stealing (split_pending)
# --------------------------------------------------------------------------


class TestWorkStealing:
    def test_split_halves_preserve_cells_and_claim_order(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        spool.initialise()
        _, cells = _demo_cells([1, 2, 3, 4, 5])
        (task,) = shard_cells(cells, "demo/random_walk", task_size=5)
        spool.publish_task(task)
        halves = spool.split_pending(task.task_id)
        assert halves == (f"{task.task_id}-a", f"{task.task_id}-b")
        pending = spool.pending_task_ids()
        assert pending == sorted(pending)  # halves claim in run-list order
        first = spool.claim(halves[0]).task
        second = spool.claim(halves[1]).task
        assert first.cells + second.cells == task.cells
        assert len(first.cells) == 3 and len(second.cells) == 2

    def test_half_ids_sort_between_parent_and_successor(self):
        assert "task-00000" < "task-00000-a" < "task-00000-b" < "task-00001"

    def test_too_small_tasks_are_requeued_not_split(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        spool.initialise()
        _, cells = _demo_cells([1])
        (task,) = shard_cells(cells, "demo/random_walk", task_size=1)
        spool.publish_task(task)
        assert spool.split_pending(task.task_id) is None
        assert spool.pending_task_ids() == [task.task_id]

    def test_campaign_with_one_oversized_task_splits_and_stays_byte_identical(
        self, tmp_path
    ):
        serial = _serial_store(tmp_path, range(1, 9))
        backend = SpoolBackend(
            tmp_path / "spool",
            workers=2,
            task_size=8,  # one task; idle second worker must steal half
            poll_interval=0.02,
            timeout=120.0,
        )
        elastic = tmp_path / "elastic.jsonl"
        result = ParallelCampaignRunner(store=ResultStore(elastic), backend=backend).run(
            "demo/random_walk", seeds=range(1, 9)
        )
        assert result.failures == 0
        assert serial.read_bytes() == elastic.read_bytes()
        spool = Spool(tmp_path / "spool")
        kinds = {event["kind"] for event in read_events(spool.events_path)}
        assert kinds <= EVENT_KINDS
        assert "shard_split" in kinds
        assert spool.quarantined_task_ids() == []


# --------------------------------------------------------------------------
# Speculation
# --------------------------------------------------------------------------


class TestSpeculation:
    def _scheduler(self, spool, **kwargs):
        return ElasticScheduler(
            spool,
            "demo/random_walk",
            publish=spool.publish_task,
            make_task=lambda task_id, cells: SpoolTask(
                task_id=task_id, scenario="demo/random_walk", cells=tuple(cells)
            ),
            speculation_min_age_s=0.5,
            **kwargs,
        )

    def test_straggler_claim_gets_a_speculative_copy(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        spool.initialise()
        _, cells = _demo_cells([1, 2])
        tasks = shard_cells(cells, "demo/random_walk", task_size=1)
        for task in tasks:
            spool.publish_task(task)
        scheduler = self._scheduler(spool)
        for task in tasks:
            scheduler.register_published(task.task_id, cells=len(task.cells))
        scheduler.stats.add(None, cells=1, elapsed_s=0.01)  # median known
        claimed = spool.claim(tasks[0].task_id)
        assert claimed is not None
        spool.claim(tasks[1].task_id)  # queue empty; both claimed
        scheduler.observe([], [tasks[0].task_id, tasks[1].task_id], now=100.0)
        assert spool.pending_task_ids() == []  # not stragglers yet
        scheduler.observe([], [tasks[0].task_id, tasks[1].task_id], now=110.0)
        pending = spool.pending_task_ids()
        assert f"{tasks[0].task_id}~1" in pending
        assert scheduler.counters["speculated"] == 2
        # One copy per task, ever: another poll must not re-speculate.
        scheduler.observe([], [tasks[0].task_id], now=200.0)
        assert scheduler.counters["speculated"] == 2

    def test_speculative_copy_sorts_right_after_its_original(self):
        assert "task-00001" < "task-00001~1" < "task-00002"

    def test_stall_fault_suppresses_speculation(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        spool.initialise()
        _, cells = _demo_cells([1])
        (task,) = shard_cells(cells, "demo/random_walk", task_size=1)
        spool.publish_task(task)
        scheduler = self._scheduler(spool)
        scheduler.register_published(task.task_id, cells=1)
        scheduler.stats.add(None, cells=1, elapsed_s=0.01)
        spool.claim(task.task_id)
        plan = FaultPlan(
            [FaultRule(point="scheduler.speculate", kind="stall", times=None)]
        )
        with armed(plan):
            scheduler.observe([], [task.task_id], now=100.0)
            scheduler.observe([], [task.task_id], now=110.0)
        assert spool.pending_task_ids() == []
        assert scheduler.counters["speculated"] == 0

    def test_no_history_means_no_speculation(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        spool.initialise()
        _, cells = _demo_cells([1])
        (task,) = shard_cells(cells, "demo/random_walk", task_size=1)
        spool.publish_task(task)
        scheduler = self._scheduler(spool)
        scheduler.register_published(task.task_id, cells=1)
        spool.claim(task.task_id)
        scheduler.observe([], [task.task_id], now=100.0)
        scheduler.observe([], [task.task_id], now=1000.0)
        assert spool.pending_task_ids() == []  # can't tell straggler from slow

    def test_stalled_worker_loses_the_race_and_its_shard_is_superseded(
        self, tmp_path, monkeypatch
    ):
        """Satellite: a worker stalled by an injected sleep holds its claim
        past the speculation threshold; the copy's records win, the late
        byte-identical twin is discarded at ingest with `task_superseded`,
        and the merged store matches the serial run exactly."""
        serial = _serial_store(tmp_path, range(1, 7))
        plan = FaultPlan(
            [
                FaultRule(
                    point="worker.cell", kind="sleep",
                    match={"task": "task-00000"}, args={"seconds": 1.5},
                ),
                FaultRule(
                    point="worker.cell", kind="sleep",
                    match={"task": "task-00002"}, args={"seconds": 3.0},
                ),
            ]
        )
        plan_path = plan.save(tmp_path / "plan.json")
        monkeypatch.setenv(PLAN_ENV, str(plan_path))  # workers arm at import
        backend = SpoolBackend(
            tmp_path / "spool",
            workers=2,
            task_size=2,
            lease_timeout=30.0,  # leases must outlive the injected stalls
            poll_interval=0.02,
            timeout=120.0,
        )
        elastic = tmp_path / "elastic.jsonl"
        result = ParallelCampaignRunner(store=ResultStore(elastic), backend=backend).run(
            "demo/random_walk", seeds=range(1, 7)
        )
        assert result.failures == 0
        assert serial.read_bytes() == elastic.read_bytes()
        spool = Spool(tmp_path / "spool")
        kinds = {event["kind"] for event in read_events(spool.events_path)}
        assert kinds <= EVENT_KINDS
        assert "task_speculated" in kinds
        assert "task_superseded" in kinds
        assert spool.quarantined_task_ids() == []
        # The spool's merged view is equally byte-identical, duplicates and all.
        merged = tmp_path / "merged.jsonl"
        merge_spool_results(spool, ResultStore(merged))
        assert serial.read_bytes() == merged.read_bytes()


# --------------------------------------------------------------------------
# Cell-deadline campaigns
# --------------------------------------------------------------------------


class TestCellTimeoutCampaign:
    def test_runaway_cell_is_killed_and_quarantined_as_cell_timeout(
        self, tmp_path, monkeypatch
    ):
        deadline = 1.0
        plan = FaultPlan(
            [
                FaultRule(
                    point="run.cell", kind="sleep",
                    match={"seed": 2}, times=None, args={"seconds": 60.0},
                )
            ]
        )
        plan_path = plan.save(tmp_path / "plan.json")
        monkeypatch.setenv(PLAN_ENV, str(plan_path))
        backend = SpoolBackend(
            tmp_path / "spool",
            workers=1,
            task_size=1,
            poll_interval=0.02,
            timeout=120.0,
            max_task_attempts=2,
            cell_timeout=deadline,
        )
        store_path = tmp_path / "store.jsonl"
        started = time.monotonic()
        result = ParallelCampaignRunner(store=ResultStore(store_path), backend=backend).run(
            "demo/random_walk", seeds=[1, 2, 3]
        )
        elapsed = time.monotonic() - started
        assert elapsed < 60.0  # the 60s sleep never ran to completion
        assert result.failures == 1
        (failed,) = [record for record in result.records if not record.ok]
        assert failed.seed == 2
        assert failed.error_class == "CellTimeout"
        assert "deadline" in failed.error
        spool = Spool(tmp_path / "spool")
        assert spool.quarantined_task_ids() == ["task-00001"]
        events = read_events(spool.events_path)
        assert {event["kind"] for event in events} <= EVENT_KINDS
        kills = [event for event in events if event["kind"] == "cell_timeout"]
        assert kills and all(event["seconds"] == deadline for event in kills)
        # The watchdog fired within twice the deadline of the claim.
        claims = {
            event["task"]: event["ts"]
            for event in events
            if event["kind"] == "task_claimed"
        }
        for kill in kills:
            assert kill["ts"] - claims[kill["task"]] < 2.0 * deadline

    def test_requeue_timeout_event_feeds_ledger_and_timeout_indices(self, tmp_path):
        spool = Spool(tmp_path / "spool", max_task_attempts=2)
        spool.initialise()
        _, cells = _demo_cells([1])
        (task,) = shard_cells(cells, "demo/random_walk", task_size=1)
        spool.publish_task(task)
        assert (
            spool.requeue(spool.claim_next(), event="timeout", index=0) == "requeued"
        )
        assert spool.reclaim_count(task.task_id) == 1
        assert (
            spool.requeue(spool.claim_next(), event="timeout", index=0) == "quarantined"
        )
        # The cap-hitting attempt rides the quarantine line as its cause, so
        # the attempt count stays accurate and the index stays attributable.
        assert spool.reclaim_count(task.task_id) == 1
        assert spool.timeout_indices(task.task_id) == {0}


# --------------------------------------------------------------------------
# Adaptive campaigns
# --------------------------------------------------------------------------


class TestAdaptiveCampaign:
    def test_adaptive_campaign_is_byte_identical_and_reports_counters(self, tmp_path):
        serial = _serial_store(tmp_path, range(1, 9))
        backend = SpoolBackend(
            tmp_path / "spool",
            workers=2,
            task_size="adaptive",
            poll_interval=0.02,
            timeout=120.0,
        )
        adaptive = tmp_path / "adaptive.jsonl"
        result = ParallelCampaignRunner(store=ResultStore(adaptive), backend=backend).run(
            "demo/random_walk", seeds=range(1, 9)
        )
        assert result.failures == 0
        assert serial.read_bytes() == adaptive.read_bytes()
        spool = Spool(tmp_path / "spool")
        events = read_events(spool.events_path)
        assert {event["kind"] for event in events} <= EVENT_KINDS
        (start,) = [event for event in events if event["kind"] == "campaign_start"]
        assert start["tasks"] == 1  # one probe (single parameter signature)
        progress = read_progress(spool.progress_path)
        assert progress is not None and progress.complete
        assert progress.scheduler.get("backlog_published", 0) >= 1

    def test_adaptive_task_size_rejects_resume(self, tmp_path):
        _, cells = _demo_cells([1, 2])
        fixed = _campaign_id("demo/random_walk", cells, 2)
        adaptive = _campaign_id("demo/random_walk", cells, "adaptive")
        assert fixed != adaptive  # adaptive spools never match a fixed resume

    def test_bad_task_size_strings_are_rejected(self):
        with pytest.raises(ValueError):
            SpoolBackend("unused-spool", task_size="huge")

    def test_progress_scheduler_field_round_trips(self, tmp_path):
        from repro.observability.progress import ProgressTracker

        path = tmp_path / "progress.json"
        tracker = ProgressTracker(path, scenario="s", backend="spool")
        tracker.begin(total=4)
        tracker.set_scheduler({"speculated": 2, "splits_observed": 1})
        tracker.finish(complete=True)
        progress = read_progress(path)
        assert progress.scheduler == {"speculated": 2, "splits_observed": 1}
        # Plain campaigns keep the v1 schema: no scheduler key at all.
        plain = tmp_path / "plain.json"
        plain_tracker = ProgressTracker(plain, scenario="s", backend="inline")
        plain_tracker.begin(total=1)
        plain_tracker.finish(complete=True)
        assert "scheduler" not in json.loads(plain.read_text())


# --------------------------------------------------------------------------
# fsck
# --------------------------------------------------------------------------


class TestFsck:
    def _damaged_spool(self, tmp_path):
        spool = Spool(tmp_path / "spool", max_task_attempts=3)
        spool.initialise()
        _, cells = _demo_cells([1, 2, 3])
        tasks = shard_cells(cells, "demo/random_walk", task_size=1)
        for task in tasks:
            spool.publish_task(task)
        # Complete the first task legitimately so a valid shard exists.
        run_worker(spool.root, idle_timeout=0.05, poll_interval=0.01, max_tasks=1)
        assert spool.verify_shard(tasks[0].task_id)
        # Torn shard: bytes that can never pass the sha256 trailer.
        (spool.results_dir / f"{tasks[1].task_id}.jsonl").write_text("{torn\n")
        # Orphaned lease: claim still held although a valid shard exists
        # (shard verification checks only the trailer, so borrow good bytes).
        assert spool.claim(tasks[2].task_id) is not None
        good = (spool.results_dir / f"{tasks[0].task_id}.jsonl").read_bytes()
        (spool.results_dir / f"{tasks[2].task_id}.jsonl").write_bytes(good)
        # Stale + unparsable heartbeats:
        spool.workers_dir.mkdir(parents=True, exist_ok=True)
        (spool.workers_dir / "w-stale.json").write_text(
            json.dumps({"state": "idle", "ts": time.time() - 10_000})
        )
        (spool.workers_dir / "w-bad.json").write_text("not json")
        return spool, tasks

    def test_fsck_detects_damage_and_repair_heals_it(self, tmp_path):
        spool, tasks = self._damaged_spool(tmp_path)
        report = fsck_spool(spool)
        kinds = {issue["kind"] for issue in report["issues"]}
        assert "torn_shard" in kinds
        assert "orphaned_lease" in kinds
        assert "stale_heartbeat" in kinds
        assert "bad_heartbeat" in kinds
        assert report["ok"] is False

        repaired = fsck_spool(spool, repair=True)
        assert repaired["ok"] is True
        assert repaired["repaired"]
        clean = fsck_spool(spool)
        assert clean["issues"] == [] and clean["ok"] is True
        assert not (spool.results_dir / f"{tasks[1].task_id}.jsonl").exists()
        assert not (spool.workers_dir / "w-stale.json").exists()
        assert not (spool.workers_dir / "w-bad.json").exists()

    def test_fsck_lifts_quarantine_on_a_completed_task(self, tmp_path):
        spool = Spool(tmp_path / "spool", max_task_attempts=1)
        spool.initialise()
        _, cells = _demo_cells([1])
        (task,) = shard_cells(cells, "demo/random_walk", task_size=1)
        spool.publish_task(task)
        # Execute it so a valid shard exists, then force it into quarantine.
        run_worker(spool.root, idle_timeout=0.05, poll_interval=0.01, max_tasks=1)
        assert spool.verify_shard(task.task_id)
        spool.quarantine_dir.mkdir(parents=True, exist_ok=True)
        (spool.quarantine_dir / f"{task.task_id}.json").write_text(
            json.dumps(task.to_json_dict())
        )
        report = fsck_spool(spool, repair=True)
        assert any(
            issue["kind"] == "quarantine_completed" for issue in report["issues"]
        )
        assert spool.quarantined_task_ids() == []

    def test_fsck_cli_reports_and_repairs(self, tmp_path, capsys):
        spool, _ = self._damaged_spool(tmp_path)
        assert cli_main(["fsck", str(spool.root)]) == 1
        out = capsys.readouterr().out
        assert "issue(s)" in out and "--repair" in out
        assert cli_main(["fsck", str(spool.root), "--repair"]) == 0
        assert "repaired:" in capsys.readouterr().out
        assert cli_main(["fsck", str(spool.root), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["issues"] == [] and document["ok"] is True

    def test_fsck_cli_rejects_a_non_spool_directory(self, tmp_path, capsys):
        assert cli_main(["fsck", str(tmp_path / "nowhere")]) == 1
        assert "not a campaign spool" in capsys.readouterr().out


# --------------------------------------------------------------------------
# Recovery of last resort
# --------------------------------------------------------------------------


class TestRepublishMissing:
    def test_recovery_task_ids_sort_after_every_numeric_id(self):
        assert "task-99999" < "task-r00000" < "task-r00001"

    def test_republish_missing_covers_the_cells(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        spool.initialise()
        scheduler = ElasticScheduler(
            spool,
            "demo/random_walk",
            publish=spool.publish_task,
            make_task=lambda task_id, cells: SpoolTask(
                task_id=task_id, scenario="demo/random_walk", cells=tuple(cells)
            ),
        )
        _, cells = _demo_cells([1, 2, 3])
        assert scheduler.republish_missing(cells) == 1
        (pending,) = spool.pending_task_ids()
        assert pending.startswith("task-r")
        assert len(spool.claim(pending).task.cells) == 3
        assert scheduler.counters["republished_missing"] == 1


# --------------------------------------------------------------------------
# CLI validation
# --------------------------------------------------------------------------


class TestElasticCli:
    def test_task_size_accepts_adaptive_and_rejects_garbage(self, capsys):
        rc = cli_main(
            ["run", "demo/random_walk", "--seeds", "1", "--task-size", "huge"]
        )
        assert rc == 2
        assert "--task-size" in capsys.readouterr().err

    def test_cell_timeout_is_spool_only_and_positive(self, tmp_path, capsys):
        rc = cli_main(
            ["run", "demo/random_walk", "--seeds", "1", "--cell-timeout", "5"]
        )
        assert rc == 2
        assert "--cell-timeout" in capsys.readouterr().err
        rc = cli_main(
            ["run", "demo/random_walk", "--seeds", "1", "--backend", "spool",
             "--spool", str(tmp_path / "spool"), "--cell-timeout", "-1"]
        )
        assert rc == 2
        assert "--cell-timeout" in capsys.readouterr().err
