"""Sensor fusion.

Three redundancy/fusion flavours named by the paper (section IV-B):

* **Component redundancy** — several physical sensors measuring the same
  quantity; fused with Marzullo interval intersection (the paper cites
  Marzullo's fault-tolerant sensor averaging [26]) or with validity-weighted
  averaging.
* **Analytical redundancy** — a model prediction used as an extra (virtual)
  sensor (see :class:`repro.sensors.abstract_sensor.AnalyticalModel`).
* **Temporal redundancy** — "a series of samples and some comparison or
  averaging"; :class:`TemporalFuser` implements a validity-aware moving
  estimate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, Sequence, Tuple

from repro.sensors.readings import SensorReading


@dataclass(frozen=True)
class FusionResult:
    """Fused estimate with an aggregate validity and supporting interval."""

    value: float
    validity: float
    interval: Tuple[float, float]
    contributors: int

    @property
    def error_bound(self) -> float:
        return 0.5 * (self.interval[1] - self.interval[0])


def naive_mean(readings: Sequence[SensorReading]) -> Optional[FusionResult]:
    """Baseline fusion: unweighted mean, ignoring validity (used as E2 baseline)."""
    if not readings:
        return None
    values = [r.value for r in readings]
    mean = sum(values) / len(values)
    low = min(r.interval[0] for r in readings)
    high = max(r.interval[1] for r in readings)
    return FusionResult(value=mean, validity=1.0, interval=(low, high), contributors=len(readings))


def validity_weighted_mean(
    readings: Sequence[SensorReading], min_validity: float = 0.0
) -> Optional[FusionResult]:
    """Validity-weighted average; readings at/below ``min_validity`` are excluded.

    Aggregate validity is the normalised total weight (how much trusted
    evidence supports the estimate relative to the number of contributors).
    """
    usable = [r for r in readings if r.validity > min_validity]
    if not usable:
        return None
    total_weight = sum(r.validity for r in usable)
    if total_weight <= 0:
        return None
    value = sum(r.value * r.validity for r in usable) / total_weight
    validity = min(1.0, total_weight / len(usable))
    low = min(r.interval[0] for r in usable)
    high = max(r.interval[1] for r in usable)
    return FusionResult(value=value, validity=validity, interval=(low, high), contributors=len(usable))


def marzullo_fuse(
    readings: Sequence[SensorReading], max_faulty: Optional[int] = None
) -> Optional[FusionResult]:
    """Marzullo's algorithm for fault-tolerant interval intersection.

    Finds the smallest interval contained in at least ``n - f`` of the input
    intervals, where ``f`` is the assumed maximum number of faulty sensors
    (default ``(n - 1) // 2``).  The fused value is the interval midpoint.
    """
    intervals = [r.interval for r in readings if r.is_valid]
    n = len(intervals)
    if n == 0:
        return None
    if max_faulty is None:
        max_faulty = (n - 1) // 2
    needed = max(1, n - max_faulty)

    # Sweep over interval endpoints counting overlaps.  Starts sort before
    # ends at equal coordinates so touching (closed) intervals overlap.
    endpoints: List[Tuple[float, int]] = []
    for low, high in intervals:
        endpoints.append((low, +1))
        endpoints.append((high, -1))
    endpoints.sort(key=lambda point: (point[0], -point[1]))

    max_overlap = 0
    count = 0
    for _coordinate, delta in endpoints:
        count += 1 if delta == +1 else -1
        max_overlap = max(max_overlap, count)
    # Classic Marzullo behaviour: if fewer than `needed` intervals ever agree
    # (e.g. disjoint correct readings), fall back to the best agreement seen.
    target = min(needed, max_overlap) if max_overlap else needed

    best: Optional[Tuple[float, float]] = None
    count = 0
    current_start = None
    for coordinate, delta in endpoints:
        if delta == +1:
            count += 1
            if count >= target and current_start is None:
                current_start = coordinate
        else:
            if count >= target and current_start is not None:
                candidate = (current_start, coordinate)
                if best is None or (candidate[1] - candidate[0]) < (best[1] - best[0]):
                    best = candidate
                current_start = None
            count -= 1
            if count < target:
                current_start = None
    if best is None:
        return None
    value = 0.5 * (best[0] + best[1])
    agreeing = sum(1 for low, high in intervals if low <= best[1] and high >= best[0])
    validity = agreeing / n
    return FusionResult(value=value, validity=validity, interval=best, contributors=n)


class TemporalFuser:
    """Temporal-redundancy fusion over a sliding window of recent readings.

    The estimate is a validity-weighted mean of the window; readings older
    than ``max_age`` are evicted.  This implements the paper's third
    redundancy option ("a series of samples and some comparison or
    averaging").
    """

    def __init__(self, window: int = 5, max_age: float = 1.0):
        if window < 1:
            raise ValueError("window must be >= 1")
        if max_age <= 0:
            raise ValueError("max_age must be positive")
        self.window = window
        self.max_age = max_age
        self._buffer: Deque[SensorReading] = deque(maxlen=window)

    def add(self, reading: SensorReading) -> None:
        self._buffer.append(reading)

    def estimate(self, now: float) -> Optional[FusionResult]:
        """Current fused estimate, or ``None`` when no fresh reading exists."""
        fresh = [r for r in self._buffer if r.is_fresh(now, self.max_age)]
        return validity_weighted_mean(fresh)

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)
