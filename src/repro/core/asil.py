"""Automotive Safety Integrity Levels (ISO 26262).

The paper evaluates "safety assurance according to the ISO 26262 safety
standard" and notes that "for each level of service, and for each speed
interval, the safety goals are different with respect [to] their attributes
of Automotive Software Integrity Levels (ASIL)" (section VI-A.1).
"""

from __future__ import annotations

import enum
import functools


@functools.total_ordering
class ASIL(enum.Enum):
    """ISO 26262 integrity levels, ordered QM < A < B < C < D."""

    QM = 0
    A = 1
    B = 2
    C = 3
    D = 4

    def __lt__(self, other: "ASIL") -> bool:
        if not isinstance(other, ASIL):
            return NotImplemented
        return self.value < other.value

    @classmethod
    def from_name(cls, name: str) -> "ASIL":
        """Parse ``"QM"``/``"A"``..``"D"`` (case-insensitive)."""
        try:
            return cls[name.upper()]
        except KeyError as exc:
            raise ValueError(f"unknown ASIL {name!r}") from exc

    def decompose(self) -> tuple["ASIL", "ASIL"]:
        """A common ASIL decomposition of this level onto two redundant elements.

        ISO 26262-9 allows e.g. D = C(D) + A(D), B = A(B) + A(B).  The exact
        choice is a design decision; this helper returns one admissible pair
        used by the evaluation bookkeeping.
        """
        if self is ASIL.D:
            return (ASIL.C, ASIL.A)
        if self is ASIL.C:
            return (ASIL.B, ASIL.A)
        if self is ASIL.B:
            return (ASIL.A, ASIL.A)
        return (self, ASIL.QM)
