"""Repo-root pytest configuration.

Registers the campaign options shared by the benchmark harness (pytest only
honours ``pytest_addoption`` in a rootdir conftest, so they live here rather
than in ``benchmarks/conftest.py``; the fixtures that consume them are there).
"""


def pytest_addoption(parser):
    group = parser.getgroup("campaign", "experiment campaign options")
    group.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for campaign-backed benchmarks (E1-E9)",
    )
    group.addoption(
        "--seeds",
        type=int,
        default=None,
        help="run seeds 1..N instead of each benchmark's default seed list",
    )
    group.addoption(
        "--batch-size",
        type=int,
        default=None,
        help="dispatch whole chunks of N runs per worker process (campaign "
        "benchmarks; identical results, fewer process dispatches)",
    )
