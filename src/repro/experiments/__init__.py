"""``repro.experiments`` — scenario registry, parameter sweeps, campaigns.

The experiment subsystem turns ad-hoc benchmark scripts into declarative,
parallel, resumable campaigns:

* :mod:`repro.experiments.spec` — :class:`ScenarioSpec` with typed
  parameters, :class:`ParameterGrid` cartesian sweeps, canonical run keys;
* :mod:`repro.experiments.registry` — decorator-based scenario registry
  (the paper's use cases and E2-E5 experiments register as builtins);
* :mod:`repro.experiments.runner` — :class:`ParallelCampaignRunner` with
  seed-sharded ``multiprocessing`` workers, per-run error capture and
  deterministic result ordering;
* :mod:`repro.experiments.store` — JSONL persistence keyed by
  ``(scenario, params, seed)`` with resume-skip of completed runs;
* :mod:`repro.experiments.perf` — pinned perf workloads and the
  wall-time budget store behind ``benchmarks/perf_budgets.py``;
* :mod:`repro.experiments.cli` — ``python -m repro.experiments
  list|run|report|worker|merge|cache``.

Execution is pluggable through :class:`ExecutionBackend`: in-process
serial, local ``multiprocessing``, or the multi-host spool backend in
:mod:`repro.distributed` (which also provides the content-addressed
result cache shared across campaigns).
"""

from repro.experiments.spec import (
    Parameter,
    ParameterGrid,
    RunSpec,
    ScenarioSpec,
    canonical_key,
    content_cache_key,
)
from repro.experiments.registry import (
    REGISTRY,
    ScenarioRegistry,
    UnknownScenarioError,
    get_scenario,
    load_builtin_scenarios,
    scenario,
)
from repro.experiments.runner import (
    CampaignResult,
    ExecutionBackend,
    InProcessBackend,
    MultiprocessingBackend,
    ParallelCampaignRunner,
    RunRecord,
    aggregate_records,
    execute_run,
    execute_run_with_retry,
    grouped_rows,
)
from repro.experiments.store import ResultStore
from repro.experiments.perf import PERF_WORKLOADS, PerfWorkload, measure_workload

__all__ = [
    "PERF_WORKLOADS",
    "PerfWorkload",
    "measure_workload",
    "Parameter",
    "ParameterGrid",
    "RunSpec",
    "ScenarioSpec",
    "canonical_key",
    "content_cache_key",
    "REGISTRY",
    "ScenarioRegistry",
    "UnknownScenarioError",
    "get_scenario",
    "load_builtin_scenarios",
    "scenario",
    "CampaignResult",
    "ExecutionBackend",
    "InProcessBackend",
    "MultiprocessingBackend",
    "ParallelCampaignRunner",
    "RunRecord",
    "aggregate_records",
    "execute_run",
    "execute_run_with_retry",
    "grouped_rows",
    "ResultStore",
]
