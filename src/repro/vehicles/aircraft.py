"""Aerial vehicles, separation minima and the airspace world (paper Figs 6-7).

"A 'safety state' for an aerial vehicle can be considered as a spatial volume
around the vehicle where the possibility of entrance of other objects is
minimal ... Usually this spatial volume is described in terms of a vertical
and a lateral distance, called 'separation minima'" (section VI-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder
from repro.vehicles.controllers import VerticalProfile
from repro.vehicles.kinematics import clamp


@dataclass(frozen=True)
class SeparationMinima:
    """The protected volume around an aircraft (Fig 7)."""

    lateral: float = 9260.0     # 5 NM in metres
    vertical: float = 300.0     # ~1000 ft in metres

    def violated_by(
        self,
        own_position: Tuple[float, float, float],
        other_position: Tuple[float, float, float],
    ) -> bool:
        """Whether the other position intrudes into the protected volume."""
        horizontal = math.hypot(
            other_position[0] - own_position[0], other_position[1] - own_position[1]
        )
        vertical = abs(other_position[2] - own_position[2])
        return horizontal < self.lateral and vertical < self.vertical


@dataclass
class Aircraft:
    """A (possibly remotely piloted) aerial vehicle with simple point-mass motion.

    ``collaborative`` marks whether the aircraft broadcasts its (accurate,
    ADS-B-like) position; non-collaborative intruders only expose a degraded
    position estimate (section VI-B: "A non-collaborative vehicle ... has a
    much less accurate estimative of its actual position").
    """

    aircraft_id: str
    position: Tuple[float, float, float] = (0.0, 0.0, 1000.0)
    speed: float = 120.0
    heading: float = 0.0           # radians, in the horizontal plane
    vertical_speed: float = 0.0
    collaborative: bool = True
    position_uncertainty: float = 0.0
    max_speed: float = 250.0
    vertical_profile: Optional[VerticalProfile] = None
    separation: SeparationMinima = field(default_factory=SeparationMinima)
    is_rpv: bool = False

    @property
    def altitude(self) -> float:
        return self.position[2]

    def set_heading_towards(self, waypoint: Tuple[float, float]) -> None:
        self.heading = math.atan2(waypoint[1] - self.position[1], waypoint[0] - self.position[0])

    def set_speed(self, speed: float) -> None:
        self.speed = clamp(speed, 0.0, self.max_speed)

    def climb_to(self, altitude: float, rate: float = 10.0) -> None:
        self.vertical_profile = VerticalProfile(target_altitude=altitude, climb_rate=rate)

    def step(self, dt: float) -> None:
        """Integrate one time step of horizontal and vertical motion."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        if self.vertical_profile is not None:
            self.vertical_speed = self.vertical_profile.vertical_speed(self.altitude)
        x, y, z = self.position
        x += self.speed * math.cos(self.heading) * dt
        y += self.speed * math.sin(self.heading) * dt
        z += self.vertical_speed * dt
        self.position = (x, y, max(0.0, z))

    def horizontal_distance_to(self, other: "Aircraft") -> float:
        return math.hypot(
            other.position[0] - self.position[0], other.position[1] - self.position[1]
        )

    def vertical_distance_to(self, other: "Aircraft") -> float:
        return abs(other.position[2] - self.position[2])

    def in_conflict_with(self, other: "Aircraft") -> bool:
        """Air-traffic conflict: the other aircraft intrudes into the safe volume."""
        return self.separation.violated_by(self.position, other.position)

    def reported_position(self, rng=None) -> Tuple[float, float, float]:
        """Position as observable by others (degraded for non-collaborative traffic)."""
        if self.collaborative or self.position_uncertainty <= 0 or rng is None:
            return self.position
        x, y, z = self.position
        return (
            x + float(rng.normal(0.0, self.position_uncertainty)),
            y + float(rng.normal(0.0, self.position_uncertainty)),
            z + float(rng.normal(0.0, self.position_uncertainty / 3.0)),
        )


@dataclass
class ConflictEvent:
    """A recorded separation-minima violation between two aircraft."""

    time: float
    first: str
    second: str
    horizontal_distance: float
    vertical_distance: float


class AirspaceWorld:
    """A shared airspace stepping all aircraft and recording conflicts."""

    def __init__(
        self,
        simulator: Simulator,
        step_period: float = 0.5,
        trace: Optional[TraceRecorder] = None,
    ):
        self.simulator = simulator
        self.step_period = step_period
        self.trace = trace or TraceRecorder(enabled=True)
        self.aircraft: Dict[str, Aircraft] = {}
        self.conflicts: List[ConflictEvent] = []
        self.min_horizontal_separation = float("inf")
        self.min_vertical_separation = float("inf")
        self._controllers: Dict[str, Callable[[float], None]] = {}
        self._conflict_pairs: set = set()
        self._task = None
        self.steps = 0

    def add_aircraft(
        self, aircraft: Aircraft, controller: Optional[Callable[[float], None]] = None
    ) -> Aircraft:
        """Add an aircraft; ``controller(now)`` may adjust speed/heading/profile."""
        if aircraft.aircraft_id in self.aircraft:
            raise ValueError(f"aircraft {aircraft.aircraft_id!r} already in airspace")
        self.aircraft[aircraft.aircraft_id] = aircraft
        if controller is not None:
            self._controllers[aircraft.aircraft_id] = controller
        return aircraft

    def set_controller(self, aircraft_id: str, controller: Callable[[float], None]) -> None:
        self._controllers[aircraft_id] = controller

    def start(self) -> None:
        if self._task is None:
            self._task = self.simulator.periodic(self.step_period, self._step, name="airspace")

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    # --------------------------------------------------------------- internals
    def _step(self) -> None:
        now = self.simulator.now
        self.steps += 1
        for aircraft_id, controller in self._controllers.items():
            if aircraft_id in self.aircraft:
                controller(now)
        for aircraft in self.aircraft.values():
            aircraft.step(self.step_period)
        self._check_conflicts(now)

    def _check_conflicts(self, now: float) -> None:
        ids = sorted(self.aircraft)
        for i, first_id in enumerate(ids):
            first = self.aircraft[first_id]
            for second_id in ids[i + 1:]:
                second = self.aircraft[second_id]
                horizontal = first.horizontal_distance_to(second)
                vertical = first.vertical_distance_to(second)
                # Track the tightest approach only while the pair is at a
                # comparable altitude (otherwise horizontal distance is moot).
                if vertical < first.separation.vertical:
                    self.min_horizontal_separation = min(self.min_horizontal_separation, horizontal)
                if horizontal < first.separation.lateral:
                    self.min_vertical_separation = min(self.min_vertical_separation, vertical)
                if first.in_conflict_with(second):
                    pair = (first_id, second_id)
                    if pair not in self._conflict_pairs:
                        self._conflict_pairs.add(pair)
                        event = ConflictEvent(
                            time=now,
                            first=first_id,
                            second=second_id,
                            horizontal_distance=horizontal,
                            vertical_distance=vertical,
                        )
                        self.conflicts.append(event)
                        self.trace.record(
                            now,
                            "air_conflict",
                            "airspace",
                            first=first_id,
                            second=second_id,
                            horizontal=horizontal,
                            vertical=vertical,
                        )
