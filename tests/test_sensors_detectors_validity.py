"""Tests for failure detectors and the fault-management unit."""

import pytest

from repro.sensors.detectors import (
    CrossValidationDetector,
    DetectorVerdict,
    ModelResidualDetector,
    RangeDetector,
    RateLimitDetector,
    StuckAtDetector,
    TimeoutDetector,
)
from repro.sensors.readings import SensorReading
from repro.sensors.validity import FaultManagementUnit, ValidityPolicy


def reading(value, timestamp=0.0):
    return SensorReading(quantity="q", value=value, timestamp=timestamp)


class TestRangeDetector:
    def test_inside_range_passes(self):
        verdict = RangeDetector(0.0, 100.0).check(reading(50.0), now=0.0)
        assert verdict.suspicion == 0.0

    def test_outside_range_invalidates(self):
        verdict = RangeDetector(0.0, 100.0).check(reading(150.0), now=0.0)
        assert verdict.suspicion == 1.0
        assert verdict.dominant
        assert verdict.invalidates

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            RangeDetector(10.0, 0.0)


class TestRateLimitDetector:
    def test_slow_change_passes(self):
        detector = RateLimitDetector(max_rate=10.0)
        detector.check(reading(0.0, timestamp=0.0), now=0.0)
        verdict = detector.check(reading(0.5, timestamp=0.1), now=0.1)
        assert verdict.suspicion == 0.0

    def test_fast_change_raises_suspicion(self):
        detector = RateLimitDetector(max_rate=10.0)
        detector.check(reading(0.0, timestamp=0.0), now=0.0)
        verdict = detector.check(reading(10.0, timestamp=0.1), now=0.1)
        assert verdict.suspicion > 0.0
        assert not verdict.dominant

    def test_first_reading_never_suspect(self):
        detector = RateLimitDetector(max_rate=1.0)
        assert detector.check(reading(1e9), now=0.0).suspicion == 0.0

    def test_reset_clears_history(self):
        detector = RateLimitDetector(max_rate=1.0)
        detector.check(reading(0.0, timestamp=0.0), now=0.0)
        detector.reset()
        assert detector.check(reading(100.0, timestamp=0.1), now=0.1).suspicion == 0.0


class TestTimeoutDetector:
    def test_fresh_reading_passes(self):
        verdict = TimeoutDetector(max_age=0.5).check(reading(1.0, timestamp=1.0), now=1.2)
        assert verdict.suspicion == 0.0

    def test_stale_reading_invalidates(self):
        verdict = TimeoutDetector(max_age=0.5).check(reading(1.0, timestamp=1.0), now=2.0)
        assert verdict.invalidates


class TestStuckAtDetector:
    def test_constant_stream_detected(self):
        detector = StuckAtDetector(window=6, min_run=3)
        suspicions = [detector.check(reading(5.0, timestamp=i * 0.1), now=i * 0.1).suspicion for i in range(6)]
        assert suspicions[-1] > 0.0

    def test_varying_stream_not_detected(self):
        detector = StuckAtDetector(window=6, min_run=3)
        suspicions = [
            detector.check(reading(float(i), timestamp=i * 0.1), now=i * 0.1).suspicion for i in range(6)
        ]
        assert all(s == 0.0 for s in suspicions)


class TestModelResidualDetector:
    def test_agreeing_model_passes(self):
        detector = ModelResidualDetector(model=lambda t: 10.0, tolerance=1.0)
        assert detector.check(reading(10.5), now=0.0).suspicion == 0.0

    def test_large_residual_raises_suspicion(self):
        detector = ModelResidualDetector(model=lambda t: 10.0, tolerance=1.0)
        assert detector.check(reading(20.0), now=0.0).suspicion > 0.5


class TestCrossValidationDetector:
    def test_agreement_with_peers_passes(self):
        peers = [reading(10.0), reading(10.2), reading(9.9)]
        detector = CrossValidationDetector(lambda: peers, tolerance=1.0)
        assert detector.check(reading(10.1), now=0.0).suspicion == 0.0

    def test_disagreement_with_peers_detected(self):
        peers = [reading(10.0), reading(10.2), reading(9.9)]
        detector = CrossValidationDetector(lambda: peers, tolerance=1.0)
        assert detector.check(reading(25.0), now=0.0).suspicion > 0.0

    def test_too_few_peers_is_inconclusive(self):
        detector = CrossValidationDetector(lambda: [reading(10.0)], tolerance=1.0)
        assert detector.check(reading(100.0), now=0.0).suspicion == 0.0


class TestFaultManagementUnit:
    def _verdict(self, suspicion, dominant=False):
        return DetectorVerdict(detector="d", suspicion=suspicion, dominant=dominant)

    def test_no_verdicts_full_validity(self):
        assessment = FaultManagementUnit().combine([])
        assert assessment.validity == 1.0

    def test_dominant_detection_forces_zero(self):
        fmu = FaultManagementUnit()
        assessment = fmu.combine([self._verdict(1.0, dominant=True), self._verdict(0.0)])
        assert assessment.validity == 0.0
        assert assessment.dominant_triggered

    def test_product_policy(self):
        fmu = FaultManagementUnit(policy=ValidityPolicy.PRODUCT)
        assessment = fmu.combine([self._verdict(0.5), self._verdict(0.5)])
        assert assessment.validity == pytest.approx(0.25)

    def test_worst_case_policy(self):
        fmu = FaultManagementUnit(policy=ValidityPolicy.WORST_CASE)
        assessment = fmu.combine([self._verdict(0.3), self._verdict(0.7)])
        assert assessment.validity == pytest.approx(0.3)

    def test_mean_policy(self):
        fmu = FaultManagementUnit(policy=ValidityPolicy.MEAN)
        assessment = fmu.combine([self._verdict(0.2), self._verdict(0.6)])
        assert assessment.validity == pytest.approx(0.6)

    def test_floor_applies(self):
        fmu = FaultManagementUnit(policy=ValidityPolicy.WORST_CASE, floor=0.2)
        assessment = fmu.combine([self._verdict(1.0)])
        assert assessment.validity == pytest.approx(0.2)

    def test_assess_annotates_reading(self):
        fmu = FaultManagementUnit()
        annotated = fmu.assess(reading(1.0), [self._verdict(0.4)])
        assert annotated.validity == pytest.approx(0.6)

    def test_dominant_without_full_suspicion_does_not_invalidate(self):
        verdict = DetectorVerdict(detector="d", suspicion=0.4, dominant=True)
        assert not verdict.invalidates
        assessment = FaultManagementUnit().combine([verdict])
        assert assessment.validity == 1.0

    def test_invalid_floor_rejected(self):
        with pytest.raises(ValueError):
            FaultManagementUnit(floor=1.0)
