"""Coordinated lane-change manoeuvres on highways (paper section VI-A.3).

"The idea here i[s] to provide a distributed mechanism for assuring that at
any time and any region there is at most one vehicle that is changing its
lane and that the nearby vehicles allow it to safely complete the manoeuvre."

Vehicles cruise on a two-lane highway; a subset of them request a lane change
at scheduled times.  With coordination enabled, each requester runs the
manoeuvre-agreement protocol with the vehicles in its region and only starts
the manoeuvre after a commit; without coordination every requester simply
starts changing when it wants to.  The safety property checked is the paper's
"at most one changer per region at any time" plus lateral near-miss distance
in the target lane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.cooperation.agreement import AgreementOutcome, ManeuverAgreement, ManeuverProposal
from repro.middleware.broker import EventBroker
from repro.middleware.qos import QoSSpec
from repro.network.medium import MediumConfig
from repro.scenario import MetricProbe, NodeSpec, RadioPreset, ScenarioHarness, WorldSpec
from repro.vehicles.controllers import AccController, CruiseController
from repro.vehicles.vehicle import Vehicle

COORDINATION_SUBJECT = "karyon/lane_change"


@dataclass
class LaneChangeConfig:
    """Scenario parameters."""

    vehicles: int = 8
    #: Vehicle indices that request a lane change, with the request time.
    requests: Tuple[Tuple[int, float], ...] = ((1, 5.0), (3, 5.2), (5, 5.4))
    coordinated: bool = True
    duration: float = 40.0
    seed: int = 11
    initial_spacing: float = 30.0
    cruise_speed: float = 25.0
    region_length: float = 200.0
    neighbourhood_radius: float = 80.0
    maneuver_duration: float = 3.0
    agreement_timeout: float = 1.0
    lateral_conflict_gap: float = 8.0
    world_step: float = 0.05
    retry_period: float = 2.0


@dataclass
class LaneChangeResults:
    """One row of the lane-change safety/throughput table."""

    coordinated: bool
    completed_changes: int
    simultaneous_violations: int
    lateral_conflicts: int
    aborted_proposals: int
    mean_wait: float

    def as_row(self) -> Dict[str, object]:
        from repro.evaluation.rows import usecase_row

        return usecase_row(self)


class LaneChangeAgent:
    """Per-vehicle lane-change coordination logic."""

    def __init__(self, vehicle: Vehicle, scenario: "LaneChangeScenario"):
        self.vehicle = vehicle
        self.scenario = scenario
        self.broker = scenario.brokers[vehicle.vehicle_id]
        self.agreement = ManeuverAgreement(
            own_id=vehicle.vehicle_id,
            simulator=scenario.simulator,
            send=self._send,
            lease_duration=scenario.config.maneuver_duration + 2.0,
            exclusive_lock=True,
        )
        self.broker.subscribe(COORDINATION_SUBJECT, self._on_event)
        self.wants_change_at: Optional[float] = None
        self.change_requested_at: Optional[float] = None
        self.change_started_at: Optional[float] = None
        self.change_completed_at: Optional[float] = None
        self.active_proposal: Optional[ManeuverProposal] = None
        self.controller = AccController(
            time_gap=1.4, cruise=CruiseController(target_speed=scenario.config.cruise_speed)
        )

    # --------------------------------------------------------------- messaging
    def _send(self, destination: Optional[str], message: dict) -> None:
        payload = dict(message)
        payload["to"] = destination
        payload["from"] = self.vehicle.vehicle_id
        self.broker.publish(COORDINATION_SUBJECT, content=payload)

    def _on_event(self, event) -> None:
        content = event.content or {}
        if not isinstance(content, dict):
            return
        destination = content.get("to")
        if destination is not None and destination != self.vehicle.vehicle_id:
            return
        if content.get("from") == self.vehicle.vehicle_id:
            return
        self.agreement.on_message(content, sender=content.get("from"))

    # ------------------------------------------------------------------ control
    def region(self) -> str:
        return f"region_{int(self.vehicle.position // self.scenario.config.region_length)}"

    def control(self, now: float) -> float:
        leader = self.scenario.world.leader_of(self.vehicle.vehicle_id)
        gap = self.vehicle.gap_to(leader) if leader is not None else None
        leader_speed = leader.speed if leader is not None else None
        return self.controller.acceleration(self.vehicle.speed, gap, leader_speed)

    # -------------------------------------------------------------- lane change
    def request_change(self, now: float) -> None:
        if self.change_requested_at is None:
            self.change_requested_at = now
        if not self.scenario.config.coordinated:
            self._start_change(now)
            return
        if self.active_proposal is not None or self.vehicle.changing_lane:
            return
        participants = {
            other.vehicle_id
            for other in self.scenario.world.vehicles_within(
                self.vehicle.vehicle_id, self.scenario.config.neighbourhood_radius
            )
        }
        self.active_proposal = self.agreement.propose(
            maneuver="lane_change",
            region=self.region(),
            participants=participants,
            timeout=self.scenario.config.agreement_timeout,
            on_decision=self._on_decision,
        )

    def _on_decision(self, proposal: ManeuverProposal) -> None:
        now = self.scenario.simulator.now
        self.active_proposal = None
        if proposal.outcome is AgreementOutcome.COMMITTED:
            self._start_change(now, proposal)
        else:
            # Retry after a back-off unless the scenario is about to end.
            self.scenario.simulator.schedule(
                self.scenario.config.retry_period, lambda: self.request_change(self.scenario.simulator.now)
            )

    def _start_change(self, now: float, proposal: Optional[ManeuverProposal] = None) -> None:
        if self.vehicle.changing_lane or self.change_completed_at is not None:
            return
        target_lane = 1 if self.vehicle.lane == 0 else 0
        self.vehicle.begin_lane_change(target_lane, now, self.scenario.config.maneuver_duration)
        self.change_started_at = now
        completion_delay = self.scenario.config.maneuver_duration + 0.01
        self.scenario.simulator.schedule(
            completion_delay, lambda: self._finish_change(proposal)
        )

    def _finish_change(self, proposal: Optional[ManeuverProposal]) -> None:
        self.change_completed_at = self.scenario.simulator.now
        if proposal is not None:
            self.agreement.complete(proposal)


class LaneChangeScenario:
    """Builds and runs one coordinated-lane-change scenario."""

    def __init__(self, config: Optional[LaneChangeConfig] = None):
        self.config = config or LaneChangeConfig()
        self.harness = ScenarioHarness(
            seed=self.config.seed,
            radio=RadioPreset(mac="r2t", medium=MediumConfig(communication_range=400.0)),
            world=WorldSpec("highway", lanes=2, step_period=self.config.world_step),
        )
        self.streams = self.harness.streams
        self.simulator = self.harness.simulator
        self.trace = self.harness.trace
        self.world = self.harness.world
        self.medium = self.harness.medium
        self.brokers: Dict[str, EventBroker] = self.harness.brokers
        self.agents: Dict[str, LaneChangeAgent] = {}
        self._conflict_pairs: Set[Tuple[str, str]] = set()
        self._monitor_probe: Optional[MetricProbe] = None
        self._build()

    @property
    def simultaneous_violations(self) -> int:
        return self._monitor_probe.count("simultaneous_violations")

    @property
    def lateral_conflicts(self) -> int:
        return self._monitor_probe.count("lateral_conflicts")

    def _build(self) -> None:
        config = self.config
        for i in range(config.vehicles):
            vehicle = Vehicle(vehicle_id=f"veh{i}", lane=0)
            vehicle.state.position = (config.vehicles - i) * config.initial_spacing
            vehicle.state.speed = config.cruise_speed
            self.harness.add_node(
                NodeSpec(
                    node_id=vehicle.vehicle_id,
                    position_fn=(lambda v=vehicle: v.xy()),
                    announce=((COORDINATION_SUBJECT, QoSSpec(rate_hz=20.0)),),
                )
            )
            agent = LaneChangeAgent(vehicle, self)
            self.agents[vehicle.vehicle_id] = agent
            self.world.add_vehicle(vehicle, controller=agent.control)
        for index, request_time in config.requests:
            vehicle_id = f"veh{index}"
            if vehicle_id in self.agents:
                self.simulator.schedule(
                    request_time,
                    lambda vid=vehicle_id: self.agents[vid].request_change(self.simulator.now),
                )
        self._monitor_probe = self.harness.add_probe(
            MetricProbe("lane-change-monitor", config.world_step, self._monitor)
        )
        self.world.start()

    # ----------------------------------------------------------------- monitor
    def _monitor(self, probe: MetricProbe) -> None:
        now = self.simulator.now
        # Safety property 1: at most one changer per region at any time.  A
        # "region" is the requester's neighbourhood: two vehicles changing
        # lanes simultaneously while within ``region_length`` of each other
        # violate the property.
        changers = [agent for agent in self.agents.values() if agent.vehicle.changing_lane]
        for i, first in enumerate(changers):
            for second in changers[i + 1:]:
                distance = abs(first.vehicle.position - second.vehicle.position)
                if distance <= self.config.region_length:
                    probe.increment("simultaneous_violations")
                    self.trace.record(
                        now,
                        "simultaneous_lane_change",
                        "lane-change",
                        vehicles=[first.vehicle.vehicle_id, second.vehicle.vehicle_id],
                        distance=distance,
                    )
        # Safety property 2: no near miss in the target lane while changing.
        for agent in self.agents.values():
            if not agent.vehicle.changing_lane:
                continue
            target_lane = 1 if agent.vehicle.lane == 0 else 0
            for other in self.world.vehicles.values():
                if other.vehicle_id == agent.vehicle.vehicle_id:
                    continue
                if other.lane != target_lane and not other.changing_lane:
                    continue
                if abs(other.position - agent.vehicle.position) < self.config.lateral_conflict_gap:
                    pair = tuple(sorted((agent.vehicle.vehicle_id, other.vehicle_id)))
                    if pair not in self._conflict_pairs:
                        self._conflict_pairs.add(pair)
                        probe.increment("lateral_conflicts")
                        self.trace.record(
                            now, "lateral_conflict", "lane-change",
                            first=pair[0], second=pair[1],
                        )

    # --------------------------------------------------------------------- run
    def run(self) -> LaneChangeResults:
        self.simulator.run_until(self.config.duration)
        completed = sum(
            1 for agent in self.agents.values() if agent.change_completed_at is not None
        )
        aborted = sum(len(agent.agreement.aborted) for agent in self.agents.values())
        waits = [
            agent.change_started_at - agent.change_requested_at
            for agent in self.agents.values()
            if agent.change_started_at is not None and agent.change_requested_at is not None
        ]
        mean_wait = sum(waits) / len(waits) if waits else 0.0
        return LaneChangeResults(
            coordinated=self.config.coordinated,
            completed_changes=completed,
            simultaneous_violations=self.simultaneous_violations,
            lateral_conflicts=self.lateral_conflicts,
            aborted_proposals=aborted,
            mean_wait=mean_wait,
        )
