"""Design Time Safety Information: safety rules per Level of Service.

Section III: "The Design Time Safety Information component holds a set of
predefined safety rules establishing the conditions for functional safety
assurance in each LoS. ... These safety rules express the needed validity of
(sensor) data and integrity of components (e.g., timeliness requirements)."

A :class:`SafetyRule` is a named predicate over a
:class:`~repro.core.runtime_data.RuntimeSafetyData` snapshot.  The helper
constructors cover the rule shapes the paper names explicitly: data-validity
thresholds, data-freshness (timeliness) bounds and component-integrity
requirements; ``indicator_*`` rules cover communication-state conditions such
as membership stability or bounded inaccessibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.runtime_data import RuntimeSafetyData


@dataclass(frozen=True)
class SafetyRule:
    """A single design-time safety rule."""

    name: str
    predicate: Callable[[RuntimeSafetyData], bool]
    description: str = ""
    #: Safety goal this rule contributes to (for traceability / ISO 26262).
    safety_goal: str = ""

    def holds(self, data: RuntimeSafetyData) -> bool:
        """Evaluate the rule; provider errors count as a violation."""
        try:
            return bool(self.predicate(data))
        except Exception:
            return False


def validity_at_least(item: str, threshold: float, safety_goal: str = "") -> SafetyRule:
    """Rule: the data validity of ``item`` must be at least ``threshold``."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    return SafetyRule(
        name=f"validity({item})>={threshold:g}",
        predicate=lambda data: data.validity(item) >= threshold,
        description=f"data validity of {item} must be >= {threshold:g}",
        safety_goal=safety_goal,
    )


def freshness_within(item: str, max_age: float, safety_goal: str = "") -> SafetyRule:
    """Rule: the age of ``item`` must not exceed ``max_age`` seconds."""
    if max_age <= 0:
        raise ValueError("max_age must be positive")
    return SafetyRule(
        name=f"age({item})<={max_age:g}",
        predicate=lambda data: data.age(item) <= max_age,
        description=f"{item} must be fresher than {max_age:g}s",
        safety_goal=safety_goal,
    )


def component_healthy(component: str, safety_goal: str = "") -> SafetyRule:
    """Rule: ``component`` must be healthy (no crash/timing failure)."""
    return SafetyRule(
        name=f"healthy({component})",
        predicate=lambda data: data.healthy(component),
        description=f"component {component} must be healthy",
        safety_goal=safety_goal,
    )


def indicator_true(name: str, safety_goal: str = "") -> SafetyRule:
    """Rule: a boolean indicator (e.g. membership stability) must be true."""
    return SafetyRule(
        name=f"indicator({name})",
        predicate=lambda data: bool(data.indicator(name, False)),
        description=f"indicator {name} must be true",
        safety_goal=safety_goal,
    )


def indicator_at_least(name: str, threshold: float, safety_goal: str = "") -> SafetyRule:
    """Rule: a numeric indicator must be at least ``threshold``."""
    return SafetyRule(
        name=f"indicator({name})>={threshold:g}",
        predicate=lambda data: _as_float(data.indicator(name)) >= threshold,
        description=f"indicator {name} must be >= {threshold:g}",
        safety_goal=safety_goal,
    )


def indicator_at_most(name: str, threshold: float, safety_goal: str = "") -> SafetyRule:
    """Rule: a numeric indicator must be at most ``threshold``."""
    return SafetyRule(
        name=f"indicator({name})<={threshold:g}",
        predicate=lambda data: _as_float(data.indicator(name), default=float("inf")) <= threshold,
        description=f"indicator {name} must be <= {threshold:g}",
        safety_goal=safety_goal,
    )


def _as_float(value, default: float = float("-inf")) -> float:
    if value is None:
        return default
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


class DesignTimeSafetyInfo:
    """The per-functionality, per-LoS rule sets fixed at design time."""

    def __init__(self):
        #: (functionality, rank) -> list of rules that must ALL hold for that LoS.
        self._rules: Dict[Tuple[str, int], List[SafetyRule]] = {}

    def add_rule(self, functionality: str, rank: int, rule: SafetyRule) -> None:
        """Attach ``rule`` to the given functionality and LoS rank.

        Rank 0 must remain unconditionally safe; attaching rules to it is
        rejected so the fallback LoS can never become unreachable.
        """
        if rank == 0:
            raise ValueError("the rank-0 LoS is unconditionally safe; it cannot carry rules")
        self._rules.setdefault((functionality, rank), []).append(rule)

    def add_rules(self, functionality: str, rank: int, rules: Sequence[SafetyRule]) -> None:
        for rule in rules:
            self.add_rule(functionality, rank, rule)

    def rules_for(self, functionality: str, rank: int) -> List[SafetyRule]:
        """Rules that must hold for ``functionality`` to run at LoS ``rank``.

        The conditions are cumulative: running at rank *r* requires the rules
        of every rank from 1 up to *r* to hold (a higher LoS is at least as
        demanding as the levels below it).
        """
        rules: List[SafetyRule] = []
        for level in range(1, rank + 1):
            rules.extend(self._rules.get((functionality, level), []))
        return rules

    def evaluate(
        self, functionality: str, rank: int, data: RuntimeSafetyData
    ) -> Tuple[bool, List[SafetyRule]]:
        """Evaluate all rules for a LoS; returns (all_hold, violated_rules)."""
        violated = [
            rule for rule in self.rules_for(functionality, rank) if not rule.holds(data)
        ]
        return (not violated, violated)

    def functionalities(self) -> List[str]:
        return sorted({functionality for functionality, _rank in self._rules})
