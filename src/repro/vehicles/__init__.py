"""Vehicle and airspace substrate.

Kinematic models for road vehicles and aircraft, longitudinal controllers
(ACC / CACC / cruise), a highway world with lanes and neighbour queries, and
an airspace with separation-minima bookkeeping (paper Figs 6-7).
"""

from repro.vehicles.kinematics import LongitudinalState, clamp
from repro.vehicles.controllers import (
    AccController,
    CaccController,
    CruiseController,
    EmergencyBrake,
    VerticalProfile,
)
from repro.vehicles.vehicle import Vehicle
from repro.vehicles.world import HighwayWorld, CollisionEvent
from repro.vehicles.aircraft import Aircraft, SeparationMinima, AirspaceWorld, ConflictEvent

__all__ = [
    "LongitudinalState",
    "clamp",
    "AccController",
    "CaccController",
    "CruiseController",
    "EmergencyBrake",
    "VerticalProfile",
    "Vehicle",
    "HighwayWorld",
    "CollisionEvent",
    "Aircraft",
    "SeparationMinima",
    "AirspaceWorld",
    "ConflictEvent",
]
