"""E2 — Abstract sensor validity and validity-aware fusion (Figs 2-3, section IV).

Injects each of the paper's five sensor fault classes into one replica of a
redundant ranging-sensor set and compares the estimation error of
(a) a single faulty sensor, (b) naive averaging and (c) validity-weighted
fusion driven by the MOSAIC-style failure detectors.  The fault classes run
as one sweep campaign over the registered ``sensor_validity`` scenario.
"""

from repro.evaluation.reporting import format_table
from repro.experiments import ParameterGrid
from repro.sensors.faults import FaultClass

from benchmarks.conftest import run_once, seeds_or

FAULT_CLASSES = tuple(fc.value for fc in FaultClass)


def test_benchmark_e2_sensor_validity(benchmark, campaign_runner, campaign_seed_count):
    seeds = seeds_or((0,), campaign_seed_count)

    def experiment():
        return campaign_runner.run(
            "sensor_validity",
            sweep=ParameterGrid(fault_class=FAULT_CLASSES),
            seeds=seeds,
        )

    result = run_once(benchmark, experiment)
    rows = result.grouped_rows(by=("fault_class",))
    print()
    print(format_table(rows, title="E2: per-fault-class detection coverage and fusion error (MAE, m)"))

    assert result.failures == 0
    offset_rows = [r for r in rows if "offset" in r["fault_class"] or r["fault_class"] == "stuck_at"]
    # Validity-weighted fusion must beat naive averaging for value faults.
    assert all(r["validity_weighted_mae"] <= r["naive_mean_mae"] + 1e-9 for r in offset_rows)
    assert all(r["validity_weighted_mae"] < r["faulty_sensor_mae"] for r in offset_rows)
