"""Per-cell run ledger: the machine-readable timing feed for scheduling.

Every backend that executes (or cache-serves) a cell appends one row to
``ledger.jsonl`` describing *what ran, where, how long it queued and how
long it took* — the per-cell record that elastic spool scheduling
(ROADMAP 3: shard sizing, straggler re-publish) and the control plane
(ROADMAP 1: per-tenant accounting) consume.  Rows are JSON objects:

``{"v": 1, "ts": ..., "scenario": ..., "params": "<sha256[:16] of the
canonical params payload>", "seed": ..., "key": ..., "status": "ok" |
"failed", "executed_by": "inline|process|spool|vector|cache|store",
"attempts": N, "queue_wait_s": ..., "run_s": ..., "worker": ...}``

Like ``events.jsonl`` and the trace files, the ledger is append-only
with whole-line writes — one small ``write()`` per row on an append-mode
handle — so concurrent workers interleave whole rows and a crash loses
at most the row being written.  Readers tolerate torn trailing lines and
unknown fields.  The ledger (like tracing) is opt-in via ``--trace`` and
never contributes to result bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

LEDGER_VERSION = 1
LEDGER_FILENAME = "ledger.jsonl"


def params_hash(params: Any) -> str:
    """A short stable digest of a cell's params payload.

    Callers that already hold the canonical params JSON (the runner does —
    :func:`repro.experiments.spec.canonical_key` builds it) pass the string
    through; anything else is serialized sorted-keys with a ``str``
    fallback, which is stable for the JSON-able mappings params are.
    """
    if isinstance(params, str):
        payload = params
    else:
        payload = json.dumps(
            dict(params), sort_keys=True, separators=(",", ":"), default=str
        )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class RunLedger:
    """Append-only per-cell ledger writer.

    A disabled ledger (``RunLedger(None)``) swallows every row for free,
    mirroring the tracer/telemetry discipline, so call sites never branch.
    """

    def __init__(self, path: Optional[Union[str, os.PathLike]], worker: Optional[str] = None):
        self.path = Path(path) if path is not None else None
        self.worker = worker
        self.rows = 0
        #: Rows lost to OSError; the ledger must never fail a campaign.
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        return self.path is not None

    def record(
        self,
        scenario: str,
        params: Any,
        seed: int,
        status: str,
        executed_by: str,
        run_s: float,
        queue_wait_s: Optional[float] = None,
        attempts: int = 1,
        key: Optional[str] = None,
        worker: Optional[str] = None,
        trace: Optional[str] = None,
        span: Optional[str] = None,
    ) -> None:
        """Append one cell row; a no-op when the ledger is disabled."""
        if self.path is None:
            return
        row: Dict[str, Any] = {
            "v": LEDGER_VERSION,
            "ts": round(time.time(), 6),
            "scenario": scenario,
            "params": params_hash(params),
            "seed": seed,
            "status": status,
            "executed_by": executed_by,
            "attempts": attempts,
            "run_s": round(run_s, 6),
        }
        if queue_wait_s is not None:
            row["queue_wait_s"] = round(max(0.0, queue_wait_s), 6)
        if key is not None:
            row["key"] = key
        resolved_worker = worker if worker is not None else self.worker
        if resolved_worker is not None:
            row["worker"] = resolved_worker
        if trace is not None:
            row["trace"] = trace
        if span is not None:
            row["span"] = span
        try:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
            self.rows += 1
        except OSError:
            self.dropped += 1


def read_ledger(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """All well-formed ledger rows at ``path`` (torn trailing lines skipped)."""
    rows: List[Dict[str, Any]] = []
    try:
        handle = Path(path).open("r", encoding="utf-8")
    except OSError:
        return rows
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if isinstance(row, dict) and "scenario" in row:
                rows.append(row)
    return rows


def summarize_ledger(rows: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a ledger into the shape schedulers want: per-scenario
    cell counts, total/mean run seconds and total queue wait."""
    per_scenario: Dict[str, Dict[str, Any]] = {}
    by_path: Dict[str, int] = {}
    for row in rows:
        scenario = str(row.get("scenario", "?"))
        stats = per_scenario.setdefault(
            scenario, {"cells": 0, "failed": 0, "run_s": 0.0, "queue_wait_s": 0.0}
        )
        stats["cells"] += 1
        if row.get("status") != "ok":
            stats["failed"] += 1
        stats["run_s"] += float(row.get("run_s", 0.0))
        stats["queue_wait_s"] += float(row.get("queue_wait_s", 0.0))
        executed_by = str(row.get("executed_by", "?"))
        by_path[executed_by] = by_path.get(executed_by, 0) + 1
    for stats in per_scenario.values():
        stats["mean_run_s"] = round(stats["run_s"] / stats["cells"], 6) if stats["cells"] else 0.0
        stats["run_s"] = round(stats["run_s"], 6)
        stats["queue_wait_s"] = round(stats["queue_wait_s"], 6)
    return {
        "cells": sum(stats["cells"] for stats in per_scenario.values()),
        "by_executed_by": dict(sorted(by_path.items())),
        "per_scenario": per_scenario,
    }
