"""Campaign coordinator for the spool backend.

:class:`SpoolBackend` plugs into
:class:`~repro.experiments.runner.ParallelCampaignRunner` as an
:class:`~repro.experiments.runner.ExecutionBackend`: it shards the pending
``(scenario, params, seed)`` cells into atomically-claimable task files on
a shared-filesystem spool, optionally spawns local worker processes, and
merges the result shards back **in run-list order** — so a spool campaign's
records, aggregates and persisted store are byte-identical to the same
campaign run with ``jobs=1``.

Workers may equally be started by hand (possibly on other hosts sharing
the filesystem) with ``python -m repro.experiments worker <spool>``; the
coordinator does not care who executes a task, only that every run-list
index eventually has a shard record.

While collecting, the coordinator keeps the spool's ``progress.json``
current (cells pending/running/done/failed plus each worker's latest
heartbeat), appends campaign lifecycle events to the shared event log, and
reports reclaimed leases and early worker deaths *as they happen* via
``logging`` — not only in the terminal failure message.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.distributed.scheduler import (
    DEFAULT_ADAPTIVE_TARGET_S,
    DEFAULT_SPECULATION_K,
    DEFAULT_SPLIT_MIN_CELLS,
    ElasticScheduler,
)
from repro.distributed.spool import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_MAX_TASK_ATTEMPTS,
    Spool,
    SpoolTask,
    TornShardError,
    shard_cells,
)
from repro.experiments.runner import ExecutionBackend, RunRecord
from repro.experiments.spec import RunSpec, ScenarioSpec, jsonable
from repro.experiments.store import ResultStore
from repro.observability.events import EventLog
from repro.observability.progress import ProgressTracker
from repro.observability.trace import TRACER
from repro.resilience.faults import GENERATION_ENV, inject

logger = logging.getLogger(__name__)


def _campaign_id(
    payload: str,
    cells: Sequence[Tuple[Dict[str, Any], int, int]],
    task_size: Union[int, str],
) -> str:
    """Content id of a campaign's exact work list (scenario + cells + sharding).

    Stored in ``campaign.json``: a restarted coordinator recomputes it from
    its own pending cells and resumes the spool's campaign *only* on an
    exact match — anything else is a different campaign and gets the usual
    purge-and-republish."""
    blob = json.dumps(
        {"scenario": payload, "cells": jsonable(list(cells)), "task_size": task_size},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SpoolDispatchError(RuntimeError):
    """The campaign cannot be dispatched onto a spool."""


class SpoolBackend(ExecutionBackend):
    """Execute a campaign through a shared-filesystem work queue.

    ``workers`` > 0 spawns that many local worker subprocesses for the
    duration of the campaign; with ``workers=0`` the coordinator only
    publishes tasks and waits for externally-started workers to drain them.
    """

    name = "spool"

    def __init__(
        self,
        spool_root: Union[str, os.PathLike],
        workers: int = 0,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        task_size: Union[int, str] = 1,
        poll_interval: float = 0.05,
        timeout: Optional[float] = None,
        worker_cache_root: Optional[Union[str, os.PathLike]] = None,
        scenario_modules: Sequence[str] = (),
        max_task_attempts: int = DEFAULT_MAX_TASK_ATTEMPTS,
        max_respawns: int = 0,
        worker_retries: Optional[int] = None,
        cell_timeout: Optional[float] = None,
        split_min_cells: int = DEFAULT_SPLIT_MIN_CELLS,
        speculation_k: float = DEFAULT_SPECULATION_K,
        adaptive_target_s: float = DEFAULT_ADAPTIVE_TARGET_S,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {max_respawns}")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError(f"cell_timeout must be positive, got {cell_timeout}")
        self.spool = Spool(
            spool_root, lease_timeout=lease_timeout, max_task_attempts=max_task_attempts
        )
        self.workers = int(workers)
        #: ``"adaptive"`` (or ``"auto"``) sizes shards from a probe wave's
        #: observed cell runtimes instead of a fixed cell count.
        if isinstance(task_size, str):
            if task_size not in ("adaptive", "auto"):
                raise ValueError(
                    f"task_size must be an int, 'adaptive' or 'auto', got {task_size!r}"
                )
            self.adaptive = True
            self.task_size: Union[int, str] = "adaptive"
        else:
            self.adaptive = False
            self.task_size = int(task_size)
        self.cell_timeout = cell_timeout
        self.split_min_cells = int(split_min_cells)
        self.speculation_k = float(speculation_k)
        self.adaptive_target_s = float(adaptive_target_s)
        self.poll_interval = float(poll_interval)
        self.timeout = timeout
        self.worker_cache_root = worker_cache_root
        self.scenario_modules = tuple(scenario_modules)
        #: Budget of replacement workers spawned when a spawned worker dies
        #: before campaign completion.  Each respawn runs at the next fault
        #: generation (``REPRO_FAULT_GENERATION``), so generation-gated
        #: crash rules kill the first wave but let replacements run clean.
        self.max_respawns = int(max_respawns)
        #: ``--retries`` forwarded to spawned workers (None = their default).
        self.worker_retries = worker_retries

    # ----------------------------------------------------------------- backend
    def execute(
        self,
        spec: ScenarioSpec,
        pending: Sequence[RunSpec],
        records: List[Optional[RunRecord]],
        payload: Optional[object] = None,
        progress: Optional[ProgressTracker] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        if not isinstance(payload, str):
            raise SpoolDispatchError(
                f"scenario {spec.name!r} is not resolvable by name in worker "
                "processes (ad-hoc spec?); register it — e.g. via a module "
                "importable with the worker's --import flag — to use the "
                "spool backend"
            )
        cells = [(run_spec.params, run_spec.seed, run_spec.index) for run_spec in pending]
        campaign_id = _campaign_id(payload, cells, self.task_size)
        scheduler = ElasticScheduler(
            self.spool,
            payload,
            publish=self._publish,
            make_task=lambda task_id, task_cells: SpoolTask(
                task_id=task_id, scenario=payload, cells=tuple(task_cells)
            ),
            speculation_k=self.speculation_k,
            speculation_min_age_s=max(0.5, 4.0 * self.poll_interval),
            adaptive_target_s=self.adaptive_target_s,
        )
        metadata = {
            "scenario": spec.name,
            "cells": len(cells),
            "task_size": self.task_size,
            "campaign_id": campaign_id,
        }
        if self.cell_timeout is not None:
            metadata["cell_timeout"] = self.cell_timeout
        if self.split_min_cells >= 2:
            metadata["split_min_cells"] = self.split_min_cells
        if TRACER.enabled:
            metadata["trace_id"] = TRACER.trace_id
        if self.adaptive:
            # Adaptive campaigns never resume: the task set depends on the
            # probe wave's measured runtimes, so an interrupted one's ids
            # would not line up.  Purge and republish — completed cells are
            # still cheap to recover via the content-addressed cache.
            tasks = None
            recovery = None
            self.spool.initialise(metadata=metadata)
            probes = scheduler.plan_probes(cells)
            for task in probes:
                self._publish(task)
            published_tasks = len(probes)
        else:
            tasks = shard_cells(cells, payload, self.task_size)
            for task in tasks:
                scheduler.register_published(task.task_id, cells=len(task.cells))
            metadata["tasks"] = len(tasks)
            recovery = self._try_resume(campaign_id, tasks, metadata)
            if recovery is None:
                self.spool.initialise(metadata=metadata)
                for task in tasks:
                    self._publish(task)
            published_tasks = len(tasks)

        # The coordinator's own progress file lives inside the spool, where
        # `status <spool>` (and workers on other hosts) can see it; the
        # runner's tracker — when a store is attached — is fed the same
        # per-cell completions via ``progress``.
        events = EventLog(self.spool.events_path, source="coordinator")
        scheduler.events = events
        tracker = ProgressTracker(
            self.spool.progress_path, scenario=spec.name, backend=self.name
        )
        trackers = [tracker] + ([progress] if progress is not None else [])
        tracker.begin(
            total=len(records), reused=sum(1 for record in records if record is not None)
        )
        if recovery is not None:
            logger.warning(
                "resuming campaign %s on spool %s: %d shard(s) already done, "
                "%d torn shard(s) dropped, %d task(s) republished",
                campaign_id[:12],
                self.spool.root,
                recovery["completed"],
                recovery["torn_shards"],
                recovery["republished"],
            )
            events.emit("campaign_resumed", scenario=spec.name, **recovery)
        else:
            events.emit(
                "campaign_start",
                scenario=spec.name,
                cells=len(cells),
                tasks=published_tasks,
                workers=self.workers,
            )
        task_by_id = {task.task_id: task for task in tasks} if tasks else {}
        worker_slots: List[Dict[str, Any]] = [
            {"process": self._spawn_worker(), "generation": 0, "reported": False}
            for _ in range(self.workers)
        ]
        ok = False
        ingested: Set[str] = set()
        try:
            ingested = self._collect(
                pending,
                records,
                worker_slots,
                events=events,
                trackers=trackers,
                scheduler=scheduler,
                task_by_id=task_by_id,
            )
            ok = True
        finally:
            # Let workers observe completion (or failure) and exit cleanly.
            self.spool.mark_complete()
            events.emit("campaign_complete", ok=ok)
            self._join_workers([slot["process"] for slot in worker_slots])
            if ok and scheduler is not None:
                # A speculative race (or split re-run) can resolve with the
                # losing worker still mid-task; its byte-identical shard
                # lands during the drain, after every cell is filled.  It
                # is never merged — record the discard so the race stays
                # visible in the event log and the scheduler counters.
                self._discard_late_shards(pending, ingested, scheduler, events)
                counters = {k: v for k, v in scheduler.counters.items() if v}
                if counters:
                    tracker.set_scheduler(counters)
            tracker.finish(complete=ok)

    def finalize(self, spec: ScenarioSpec) -> None:
        """Publish the completion marker even when nothing was dispatched.

        A fully resumed/cached campaign never calls :meth:`execute`, but
        externally-started workers (``--workers 0`` deployments) still wait
        on the marker and would otherwise poll forever.
        """
        self.spool.root.mkdir(parents=True, exist_ok=True)
        self.spool.mark_complete()

    # --------------------------------------------------------------- internals
    def _publish(self, task: SpoolTask) -> None:
        """Publish one task, embedding trace context when tracing is on.

        The publish span's own id rides the task file as the worker-side
        parent — this is the cross-process stitch: whichever worker claims
        the task (spawned here or started by hand on another host) parents
        its task span to this publish span, and the publish timestamp lets
        its ledger row charge the task's queue wait.
        """
        if not TRACER.enabled:
            self.spool.publish_task(task)
            return
        with TRACER.span(
            "publish", cat="publish", task=task.task_id, cells=len(task.cells)
        ) as span:
            self.spool.publish_task(
                replace(
                    task,
                    trace={
                        "id": TRACER.trace_id,
                        "parent": span.span_id,
                        "ts": round(time.time(), 6),
                    },
                )
            )

    def _try_resume(
        self,
        campaign_id: str,
        tasks: Sequence[SpoolTask],
        metadata: Dict[str, Any],
    ) -> Optional[Dict[str, int]]:
        """Adopt an interrupted campaign's spool state instead of purging it.

        Called before :meth:`Spool.initialise`: when the spool's recorded
        ``campaign_id`` matches this exact work list, a previous coordinator
        (killed mid-campaign, crashed, or power-cut) left partial state we
        can converge from — valid shards are kept, torn shards dropped, and
        tasks that are nowhere (not pending, claimed, done, or quarantined)
        are republished.  Claims are deliberately *not* force-reclaimed:
        their holders may be live external workers, and expired leases are
        reaped by the normal collect loop.  Returns the recovery stats, or
        ``None`` when the spool holds a different campaign (purge as usual).
        """
        if self.spool.metadata().get("campaign_id") != campaign_id or not self.spool.exists():
            return None
        try:
            self.spool.complete_marker.unlink()
        except FileNotFoundError:
            pass
        torn = 0
        for task in tasks:
            shard_path = self.spool.results_dir / f"{task.task_id}.jsonl"
            if shard_path.exists() and not self.spool.verify_shard(task.task_id):
                try:
                    shard_path.unlink()
                except FileNotFoundError:
                    pass
                torn += 1
        task_ids = {task.task_id for task in tasks}
        present: Set[str] = set(self.spool.pending_task_ids())
        present.update(self.spool.claimed_task_ids())
        present.update(self.spool.quarantined_task_ids())
        done = set(self.spool.completed_task_ids()) & task_ids
        present.update(done)
        republished = 0
        for task in tasks:
            if task.task_id not in present:
                self._publish(task)
                republished += 1
        # Refresh the published lease/attempt policy for this coordinator.
        self.spool.write_campaign_metadata(metadata)
        return {"completed": len(done), "torn_shards": torn, "republished": republished}

    def _spawn_worker(self, generation: int = 0) -> subprocess.Popen:
        command = [
            sys.executable,
            "-m",
            "repro.experiments",
            "worker",
            str(self.spool.root),
            "--poll",
            str(self.poll_interval),
            "--quiet",
        ]
        if self.worker_cache_root is not None:
            command += ["--cache", str(self.worker_cache_root)]
        if self.worker_retries is not None:
            command += ["--retries", str(self.worker_retries)]
        for module in self.scenario_modules:
            command += ["--import", module]
        # The parent may have repro importable via sys.path manipulation
        # (pytest conftest) rather than PYTHONPATH; make sure the worker
        # subprocess can import it either way.
        import repro

        package_root = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        if package_root not in (existing or "").split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )
        # Respawned workers run at the next fault generation so that
        # generation-gated chaos rules (max_generation: 0) spare them.
        env[GENERATION_ENV] = str(generation)
        return subprocess.Popen(command, stdout=subprocess.DEVNULL, env=env)

    def _collect(
        self,
        pending: Sequence[RunSpec],
        records: List[Optional[RunRecord]],
        worker_slots: Optional[List[Dict[str, Any]]] = None,
        events: Optional[EventLog] = None,
        trackers: Sequence[ProgressTracker] = (),
        scheduler: Optional[ElasticScheduler] = None,
        task_by_id: Optional[Dict[str, SpoolTask]] = None,
    ) -> Set[str]:
        expected: Set[int] = {run_spec.index for run_spec in pending}
        # Accept a shard record only when it is for this campaign's cell:
        # a stale worker from a previous campaign on the same spool may
        # still write shards whose task ids collide with ours.
        key_by_index: Dict[int, str] = {
            run_spec.index: run_spec.key for run_spec in pending
        }
        spec_by_index: Dict[int, RunSpec] = {
            run_spec.index: run_spec for run_spec in pending
        }
        filled: Set[int] = set()
        #: Indices filled with *synthesised* quarantine failures: a real
        #: shard arriving later (speculative copy, split half) still heals
        #: them, keeping the merged store as close to serial as possible.
        synthesized: Set[int] = set()
        ingested: Set[str] = set()
        #: mtime at which an unmatched (stale) shard was last parsed, so the
        #: poll loop re-reads it only after a worker atomically replaces it.
        stale_shard_mtime: Dict[str, float] = {}

        def ingest_new_shards() -> None:
            for task_id in self.spool.completed_task_ids():
                if task_id in ingested:
                    continue
                shard_path = self.spool.results_dir / f"{task_id}.jsonl"
                try:
                    mtime = shard_path.stat().st_mtime
                except FileNotFoundError:
                    continue
                if stale_shard_mtime.get(task_id) == mtime:
                    continue
                try:
                    with TRACER.span("ingest", cat="ingest", task=task_id):
                        shard_records = self.spool.read_result_shard(task_id)
                except TornShardError:
                    # A partial write slipped to the final path (fault
                    # injection, or a filesystem that tore the rename's
                    # backing write).  Drop it and republish the task so
                    # its cells re-execute: merging half a shard would
                    # silently diverge from the serial store.
                    logger.warning(
                        "torn result shard %s detected; discarding and re-executing",
                        task_id,
                    )
                    try:
                        shard_path.unlink()
                    except FileNotFoundError:
                        pass
                    stale_shard_mtime.pop(task_id, None)
                    if events is not None:
                        events.emit("shard_torn", task=task_id)
                    task = (task_by_id or {}).get(task_id)
                    if task is not None and not (
                        (self.spool.tasks_dir / f"{task_id}.json").exists()
                        or (self.spool.claimed_dir / f"{task_id}.json").exists()
                        or (self.spool.quarantine_dir / f"{task_id}.json").exists()
                    ):
                        self._publish(task)
                    # Elastic task ids (splits, speculative copies, adaptive
                    # shards) have no entry in task_by_id; their cells come
                    # back through the drain-time republish_missing catch-all.
                    continue
                except FileNotFoundError:
                    continue
                matched = True
                fresh = False
                for index, record in shard_records:
                    if index in expected and record.key == key_by_index[index]:
                        if index not in filled or index in synthesized:
                            fresh = True
                    else:
                        matched = False
                if matched and not fresh:
                    # Every cell already landed via an earlier shard — the
                    # loser of a speculative race or a re-run split half.
                    # First shard wins; this byte-identical twin is dropped.
                    ingested.add(task_id)
                    stale_shard_mtime.pop(task_id, None)
                    logger.info(
                        "discarding superseded shard %s (all %d cell(s) "
                        "already ingested)",
                        task_id,
                        len(shard_records),
                    )
                    if scheduler is not None:
                        scheduler.note_superseded(task_id)
                    if events is not None:
                        events.emit(
                            "task_superseded", task=task_id, cells=len(shard_records)
                        )
                    continue
                for index, record in shard_records:
                    if index in expected and record.key == key_by_index[index]:
                        records[index] = record
                        if index in synthesized:
                            synthesized.discard(index)  # late real result heals it
                        elif index not in filled:
                            filled.add(index)
                            for tracker in trackers:
                                tracker.record_record(ok=record.ok)
                if matched:
                    ingested.add(task_id)
                    stale_shard_mtime.pop(task_id, None)
                    if scheduler is not None:
                        scheduler.note_ingested(task_id, len(shard_records))
                else:
                    # A stale shard (previous campaign's straggler) occupies
                    # this task id; re-read only once its mtime changes —
                    # i.e. the real worker atomically replaced it.
                    stale_shard_mtime[task_id] = mtime

        handled_quarantine: Set[str] = set()

        def absorb_quarantined() -> None:
            """Synthesise failed records for poison tasks so the campaign
            completes (with visible failures) instead of stalling forever."""
            for task_id in self.spool.quarantined_task_ids():
                if task_id in handled_quarantine:
                    continue
                handled_quarantine.add(task_id)
                task = (task_by_id or {}).get(task_id)
                if task is None:
                    # Elastic ids (splits, speculation, adaptive shards) are
                    # not in task_by_id; read the quarantined task file
                    # itself — key verification below rejects leftovers from
                    # another campaign cell by cell.
                    try:
                        task = self.spool.read_quarantined_task(task_id)
                    except (OSError, ValueError, KeyError, TypeError):
                        continue
                attempts = max(1, self.spool.reclaim_count(task_id) + 1)
                timeout_idx = self.spool.timeout_indices(task_id)
                logger.error(
                    "task %s quarantined as poison after %d failed attempt(s); "
                    "its cells are recorded as failures "
                    "(`quarantine retry` re-queues it)",
                    task_id,
                    attempts,
                )
                if events is not None:
                    events.emit("task_quarantined", task=task_id, attempts=attempts)
                for params, seed, index in task.cells:
                    if index not in expected or index in filled:
                        continue
                    if index in timeout_idx:
                        error = (
                            f"cell killed by its wall-clock deadline in task "
                            f"{task_id} ({attempts} attempt(s))"
                        )
                        error_class = "CellTimeout"
                    else:
                        error = (
                            f"task {task_id} quarantined after {attempts} "
                            "failed execution attempt(s)"
                        )
                        error_class = "TaskQuarantined"
                    record = RunRecord(
                        scenario=task.scenario,
                        params=dict(params),
                        seed=seed,
                        status="failed",
                        error=error,
                        error_class=error_class,
                        attempts=attempts,
                    )
                    if record.key != key_by_index[index]:
                        continue  # another campaign's cell under our index
                    records[index] = record
                    filled.add(index)
                    synthesized.add(index)
                    for tracker in trackers:
                        tracker.record_record(ok=False)

        def update_liveness() -> None:
            """Fold claimed-cell counts and worker heartbeats into progress."""
            if not trackers:
                return
            cells_map = scheduler.cells_by_task if scheduler is not None else {}
            running = sum(
                cells_map.get(task_id, 1)
                for task_id in self.spool.claimed_task_ids()
            )
            heartbeats = self.spool.worker_heartbeats()
            counters = (
                {key: value for key, value in scheduler.counters.items() if value}
                if scheduler is not None
                else {}
            )
            for tracker in trackers:
                tracker.set_running(running)
                tracker.set_workers(heartbeats)
                if counters:
                    tracker.set_scheduler(counters)

        def republish_drained_missing() -> None:
            """Recovery of last resort: the queue drained but cells are missing.

            Covers elastic failure shapes the per-task republish cannot (a
            split half's torn shard — the parent task file is consumed — or
            a speculative copy lost with its original).  Only fires when
            nothing is pending, claimed, held back in the backlog, or
            sitting as an un-ingested non-stale shard.
            """
            if scheduler is None or filled == expected or scheduler.has_backlog:
                return
            if self.spool.pending_task_ids() or self.spool.claimed_task_ids():
                return
            for task_id in self.spool.completed_task_ids():
                if task_id not in ingested and task_id not in stale_shard_mtime:
                    return  # a shard landed this poll; ingest it first
            missing = [
                (spec_by_index[index].params, spec_by_index[index].seed, index)
                for index in sorted(expected - filled)
            ]
            republished = scheduler.republish_missing(missing)
            if republished:
                logger.warning(
                    "queue drained with %d cell(s) unfilled; republished them "
                    "as %d recovery task(s)",
                    len(missing),
                    republished,
                )

        # NOTE: respawns append to the caller's list so execute()'s finally
        # block joins replacements too, not just the first wave.
        worker_slots = worker_slots if worker_slots is not None else []
        respawns_left = self.max_respawns if worker_slots else 0
        started = time.time()
        while filled != expected:
            inject("coordinator.poll")
            if scheduler is not None:
                scheduler.observe(
                    self.spool.pending_task_ids(), self.spool.claimed_task_ids()
                )
            ingest_new_shards()
            absorb_quarantined()
            update_liveness()
            if filled == expected:
                break
            # Spawned workers only exit on the completion marker, which is
            # not set yet: any exit here is a crash.  Report each death as it
            # is observed and — with respawn budget left — start a
            # replacement at the next fault generation.  With every slot
            # dead and no budget (and no external workers assumed), waiting
            # longer is hopeless — but sweep once more first, in case the
            # last worker died *after* writing the final shard.
            for slot in worker_slots:
                process = slot["process"]
                if slot["reported"] or process.poll() is None:
                    continue
                slot["reported"] = True
                logger.warning(
                    "spawned spool worker (pid %d) exited early with return "
                    "code %s before campaign completion",
                    process.pid,
                    process.returncode,
                )
                if events is not None:
                    events.emit(
                        "worker_dead", pid=process.pid, returncode=process.returncode
                    )
                if respawns_left > 0:
                    respawns_left -= 1
                    generation = slot["generation"] + 1
                    replacement = self._spawn_worker(generation)
                    logger.warning(
                        "respawned worker (pid %d, generation %d; %d respawn(s) left)",
                        replacement.pid,
                        generation,
                        respawns_left,
                    )
                    if events is not None:
                        events.emit(
                            "worker_respawn",
                            pid=replacement.pid,
                            generation=generation,
                        )
                    worker_slots.append(
                        {"process": replacement, "generation": generation, "reported": False}
                    )
            if worker_slots and all(slot["reported"] for slot in worker_slots):
                ingest_new_shards()
                absorb_quarantined()
                if filled == expected:
                    break
                codes = [slot["process"].returncode for slot in worker_slots]
                raise SpoolDispatchError(
                    f"all {len(worker_slots)} spawned spool worker(s) "
                    f"exited (return codes {codes}) with "
                    f"{len(expected - filled)} cell(s) unfinished; check the "
                    "workers' stderr for import or startup errors"
                )
            for task_id in self.spool.reclaim_expired():
                logger.warning(
                    "reclaimed expired lease on %s (worker dead or stalled)", task_id
                )
                if events is not None:
                    events.emit("task_reclaimed", task=task_id)
            republish_drained_missing()
            if self.timeout is not None and time.time() - started > self.timeout:
                missing = sorted(expected - filled)
                raise SpoolDispatchError(
                    f"spool campaign timed out after {self.timeout:.1f}s with "
                    f"{len(missing)} unfinished cell(s) (first missing run-list "
                    f"indices: {missing[:5]})"
                )
            time.sleep(self.poll_interval)
        return ingested

    def _discard_late_shards(
        self,
        pending: Sequence[RunSpec],
        ingested: Set[str],
        scheduler: ElasticScheduler,
        events: Optional[EventLog],
    ) -> None:
        """Account for straggler shards that landed after completion."""
        key_by_index = {run_spec.index: run_spec.key for run_spec in pending}
        for task_id in self.spool.completed_task_ids():
            if task_id in ingested:
                continue
            try:
                shard_records = self.spool.read_result_shard(task_id)
            except (TornShardError, OSError, ValueError, KeyError):
                continue
            if not shard_records or not all(
                record.key == key_by_index.get(index)
                for index, record in shard_records
            ):
                continue  # another campaign's stale shard, not our straggler
            logger.info(
                "discarding superseded late shard %s (%d cell(s), landed "
                "after completion)",
                task_id,
                len(shard_records),
            )
            scheduler.note_superseded(task_id)
            if events is not None:
                events.emit(
                    "task_superseded", task=task_id, cells=len(shard_records)
                )

    def _join_workers(self, processes: Sequence[subprocess.Popen]) -> None:
        for process in processes:
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.terminate()
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()


def merge_spool_results(
    spool: Union[str, os.PathLike, Spool],
    store: Optional[ResultStore] = None,
) -> List[RunRecord]:
    """Collect every result shard of a spool **in run-list order**.

    Returns the merged records; when ``store`` is given they are also
    appended to it (skipping keys the store already has), so merging a
    drained spool into a fresh store reproduces the ``jobs=1`` store
    byte-for-byte.  Two shards claiming the same run-list index with
    *different* cells is a mixed-campaign spool (e.g. a straggler worker
    from a previous campaign wrote after the spool was reused) — that
    raises instead of silently merging wrong data.
    """
    spool = spool if isinstance(spool, Spool) else Spool(spool)
    by_index: Dict[int, RunRecord] = {}
    try:
        shard_records = list(spool.iter_result_records())
    except TornShardError as exc:
        raise SpoolDispatchError(
            f"spool {spool.root} holds a torn result shard ({exc}); "
            "re-run the campaign on this spool to re-execute it before merging"
        ) from exc
    for index, record in shard_records:
        existing = by_index.get(index)
        if existing is not None and existing.key != record.key:
            raise SpoolDispatchError(
                f"spool {spool.root} mixes campaigns: run-list index {index} "
                f"has records for both {existing.key!r} and {record.key!r}; "
                "re-run the campaign on a clean spool"
            )
        by_index[index] = record
    merged = [by_index[index] for index in sorted(by_index)]
    if store is not None:
        store.merge(merged)
    return merged
