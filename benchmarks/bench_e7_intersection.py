"""E7 — Intersection crossing: infrastructure light, VTL fallback, uncoordinated (section VI-A.2)."""

from repro.evaluation.reporting import format_table
from repro.experiments import ParameterGrid

from benchmarks.conftest import run_once, seeds_or

DURATION = 150.0
VEHICLES = 5
FAILURE_TIME = 20.0
MODES = ("infrastructure", "vtl_fallback", "uncoordinated")


def test_benchmark_e7_intersection_modes(benchmark, campaign_runner, campaign_seed_count):
    seeds = seeds_or((7,), campaign_seed_count)

    def experiment():
        # The scenario ignores light_failure_time in infrastructure mode.
        return campaign_runner.run(
            "intersection",
            params={
                "vehicles_per_approach": VEHICLES,
                "duration": DURATION,
                "light_failure_time": FAILURE_TIME,
            },
            sweep=ParameterGrid(mode=MODES),
            seeds=seeds,
        )

    result = run_once(benchmark, experiment)
    rows = result.grouped_rows(by=("mode",))
    print()
    print(format_table(rows, title="E7: intersection throughput and conflicts per coordination mode"))

    assert result.failures == 0
    by_mode = {row["mode"]: row for row in rows}
    infra = by_mode["infrastructure"]
    vtl = by_mode["vtl_fallback"]
    uncoordinated = by_mode["uncoordinated"]
    assert infra["conflicts"] == 0
    assert vtl["conflicts"] == 0
    assert vtl["crossed"] == infra["crossed"]
    assert vtl["vtl_activations"] > 0
    # The uncoordinated fallback pays either in conflicts or in throughput/delay.
    assert (
        uncoordinated["conflicts"] > 0
        or uncoordinated["crossed"] < vtl["crossed"]
        or uncoordinated["mean_delay"] > vtl["mean_delay"]
    )
