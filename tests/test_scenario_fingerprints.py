"""Refactor safety net: pinned same-seed fingerprints for every builtin workload.

The constants below were captured **before** the use cases and the builtin
experiment catalog were rebuilt on the ``repro.scenario`` composition layer
(PR 3).  Use-case fingerprints hash the run's metrics, full trace stream
and processed-event count at full float precision, so any change to RNG
draw order, event scheduling order or physics shows up as a mismatch;
registry-run workloads hash their metrics dict (see
``fingerprint_util`` for the exact coverage per workload kind).

Fingerprints are computed in a ``PYTHONHASHSEED=0`` subprocess because a few
scenarios iterate over sets of node-id strings (TDMA topologies, pulse-sync
neighbours, lane-change participant sets) whose order — and therefore whose
physics — depends on string-hash randomisation.  Under a fixed hash seed
every workload is exactly reproducible.

If this test fails, the refactored wiring is **not** equivalent to the
hand-written wiring it replaced.  Only refresh a constant (via
``PYTHONHASHSEED=0 PYTHONPATH=src python tests/fingerprint_util.py``) for a
deliberate, reviewed physics change.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from fingerprint_util import WORKLOADS

#: Captured at PR 3 from the pre-refactor (PR 2) wiring, PYTHONHASHSEED=0.
PINNED = {
    "platoon/karyon": "5ee46a003ce2d14a75bd20b0798d4ecaed116b3e6a86ff5d0e78b60f25ed0ef3",
    "platoon/always_cooperative": "815dafbe71503153c2fc8e7fb2c98771771b9b1af3e069f813a52696d75ae0e0",
    "platoon/never_cooperative": "8b13db5393d4ff95571852738cc79b95c2bf35ded33daa1e27e4df9c2717b17b",
    "intersection/infrastructure": "fa12e71d81f466306feded447917ad530e63254bf5ea85b1df3d2e7035d5951f",
    "intersection/vtl_fallback": "a2d9b324e5a239f5a30ebe8268a9a44acab18ed4176ac05258dbd5cb02347ea8",
    "intersection/uncoordinated": "af520567cc4784c7e009d875e73e3f0673f33d0cace2e10434cd11753592b5ac",
    "lane_change/coordinated": "c233b371792c4c1eb766480d2e75d530ce9b2f9882428a31b9b6f2eeecc1a126",
    "lane_change/uncoordinated": "ea8128e7443d390a6f8054bf016ead0ad48877f57be1ef7c0083dea2630a75b8",
    "avionics/in_trail": "d44222d2313cd2018b0d6a8ce153b4bd6ca59e3c0449a0695fdc9f84e63597fe",
    "avionics/crossing": "9f6fc11e9ba4e48cf48291097130c17c80b1c42f6853d14512ff50d208659651",
    "avionics/level_change": "cf2e4753167ab952357f16e6ebee08d2f170293e45c2a0170ba0c2d0e914af84",
    "sensor_validity": "792b055096ed868bac181756ce82ed1306894d13d5cf98e0187ca8cf743dbc24",
    "r2t_mac/r2t": "aa893d479121579c76de17ce5238ab3c88849bef1cf1fdf4fa454f7eff09ebe1",
    "r2t_mac/csma": "0db442b76756f0e6d7c00b68ab7f9b97d9da79c1dc1dcc241e30fffd35b4386d",
    "tdma_convergence": "2e9c5f2640e1a9d5f82719edc20689bf4afbc1d76cbffe7396b21e5a4d821ac9",
    "pulse_alignment": "ac4c94c4f4bc6498746a2d63fc2bb7b3ab63a924880ce94e1a98bbfa96ad6fdd",
    "event_channels/admission": "58702a281c1c93c25d4903ca243ce3e2c3e462e9736cf0e51bb4022e9688cf9a",
    "event_channels/open": "4db2e60dcc9203bc67d652fc4e9ccc8d73dbe707c6c863e48de5a64e1f324bce",
    "demo/safety_kernel": "ad1d48ef14be8ba3fe8e9df0a3b2a311b241457a054555a5a6dfa3b67dc5d7a8",
    "demo/random_walk": "e9071af4fbb5988b37e84d122efd22f38f5a488646536a80dd95ba8c8dd65640",
}


def test_every_workload_is_pinned():
    assert set(PINNED) == set(WORKLOADS)


def test_same_seed_physics_is_byte_identical():
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "0"
    env["PYTHONPATH"] = str(repo_root / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    output = subprocess.run(
        [sys.executable, str(repo_root / "tests" / "fingerprint_util.py")],
        env=env,
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    observed = json.loads(output)
    drifted = sorted(
        name for name in PINNED if observed.get(name) != PINNED[name]
    )
    assert not drifted, (
        f"same-seed physics drifted from the pre-refactor wiring for: {drifted}"
    )
